//! The TCP transport: length-delimited frames over `std::net` sockets.
//!
//! Framing is a 4-byte big-endian length prefix followed by exactly that
//! many payload bytes (one `ive_pir::wire` frame). Reads buffer partial
//! data across poll timeouts, so a frame split across TCP segments is
//! reassembled correctly no matter how the kernel slices it.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::Bytes;
use ive_pir::fault;

use crate::transport::{
    BoxedConn, Connector, FrameRx, FrameTx, Received, Transport, POLL_INTERVAL,
};
use crate::ServeError;

/// Upper bound on a single frame; a length prefix past this is treated
/// as a corrupt (or hostile) stream rather than an allocation request —
/// the receiver rejects it with a typed error before reserving a byte.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Per-syscall write deadline: a peer that stops draining its socket
/// stalls our sends at most this long before the write surfaces as
/// [`ServeError::Timeout`] instead of pinning the writer forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// A TCP listener producing framed connections.
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpTransport {
    /// Binds the listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    /// Fails when the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(TcpTransport { listener, addr })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Transport for TcpTransport {
    fn accept(&mut self) -> Result<Option<BoxedConn>, ServeError> {
        match self.listener.accept() {
            Ok((stream, _peer)) => Ok(Some(framed_pair(stream)?)),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL / 10);
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn endpoint(&self) -> String {
        format!("tcp://{}", self.addr)
    }
}

/// Dials a serving endpoint and returns the framed connection.
///
/// # Errors
/// Fails when the connection cannot be established.
pub fn connect(addr: impl ToSocketAddrs) -> Result<BoxedConn, ServeError> {
    framed_pair(TcpStream::connect(addr)?)
}

/// A reusable dialer for one TCP endpoint: the [`Connector`] the retrying
/// [`crate::Connection`] builder uses to transparently reconnect.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    addr: SocketAddr,
}

impl TcpConnector {
    /// Resolves `addr` once; every [`Connector::dial`] reconnects to the
    /// same resolved address.
    ///
    /// # Errors
    /// Fails when the address cannot be resolved.
    pub fn new(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::InvalidConfig("endpoint resolved to no address".into()))?;
        Ok(TcpConnector { addr })
    }

    /// The resolved endpoint this connector dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Connector for TcpConnector {
    fn dial(&self) -> Result<BoxedConn, ServeError> {
        connect(self.addr)
    }
}

fn framed_pair(stream: TcpStream) -> Result<BoxedConn, ServeError> {
    // BSD-derived platforms let accepted sockets inherit the listener's
    // O_NONBLOCK; clear it so read timeouts and blocking writes behave.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let writer = stream.try_clone()?;
    Ok((Box::new(TcpFrameRx { stream, buf: Vec::new() }), Box::new(TcpFrameTx { stream: writer })))
}

/// Receiving half: accumulates bytes until a whole frame is available.
struct TcpFrameRx {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TcpFrameRx {
    /// Extracts one complete frame from the buffer, if present.
    fn take_frame(&mut self) -> Result<Option<Bytes>, ServeError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(ServeError::Protocol(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = Bytes::copy_from_slice(&self.buf[4..4 + len]);
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

impl FrameRx for TcpFrameRx {
    fn recv(&mut self) -> Result<Received, ServeError> {
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(Received::Frame(frame));
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(Received::Closed)
                    } else {
                        Err(ServeError::Protocol("connection closed mid-frame".into()))
                    };
                }
                Ok(n) => {
                    // Failpoint after real bytes moved: an injected error
                    // here drops data already read off the socket, the
                    // same stream desync a mid-read fault produces.
                    fault::fail_io(fault::Site::IoRead)?;
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(Received::Idle);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Sending half: a cloned handle of the same socket.
struct TcpFrameTx {
    stream: TcpStream,
}

impl FrameTx for TcpFrameTx {
    fn send(&mut self, frame: &[u8]) -> Result<(), ServeError> {
        let len = u32::try_from(frame.len())
            .map_err(|_| ServeError::Protocol("frame exceeds u32 length prefix".into()))?;
        match fault::inject(fault::Site::IoWrite) {
            Some(fault::Action::Tear) => {
                // A torn frame: the prefix promises `len` bytes but only
                // half arrive, then the socket dies — the peer must
                // detect "closed mid-frame", never resync on garbage.
                let _ = self.stream.write_all(&len.to_be_bytes());
                let _ = self.stream.write_all(&frame[..frame.len() / 2]);
                let _ = self.stream.flush();
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                return Err(ServeError::Io(std::io::Error::other("injected io_write tear")));
            }
            Some(fault::Action::Error) => {
                return Err(ServeError::Io(std::io::Error::other("injected io_write fault")));
            }
            Some(fault::Action::Delay(d)) => std::thread::sleep(d),
            None => {}
        }
        self.stream.write_all(&len.to_be_bytes()).map_err(write_error)?;
        self.stream.write_all(frame).map_err(write_error)?;
        self.stream.flush().map_err(write_error)?;
        Ok(())
    }
}

/// Maps a stalled write (the [`WRITE_TIMEOUT`] deadline) to the typed
/// [`ServeError::Timeout`]; other write failures stay transport errors.
fn write_error(e: std::io::Error) -> ServeError {
    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut {
        ServeError::Timeout
    } else {
        e.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn tcp_frames_survive_arbitrary_segmentation() {
        let mut transport = TcpTransport::bind("127.0.0.1:0").unwrap();
        let addr = transport.local_addr();
        assert!(transport.endpoint().starts_with("tcp://127.0.0.1:"));

        // Raw client: write one 10-byte frame in three separate syscalls.
        let mut raw = TcpStream::connect(addr).unwrap();
        let (mut srx, mut stx) = loop {
            if let Some(conn) = transport.accept().unwrap() {
                break conn;
            }
        };
        raw.write_all(&[0, 0]).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        raw.write_all(&[0, 10, b'h', b'e', b'l']).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        raw.write_all(b"lo worl").unwrap();
        let frame = loop {
            match srx.recv().unwrap() {
                Received::Frame(f) => break f,
                Received::Idle => continue,
                Received::Closed => panic!("closed early"),
            }
        };
        assert_eq!(&frame[..], b"hello worl");

        // Server-to-client framing through the public connect helper.
        stx.send(b"response").unwrap();
        let mut len = [0u8; 4];
        raw.read_exact(&mut len).unwrap();
        assert_eq!(u32::from_be_bytes(len), 8);
        let mut body = [0u8; 8];
        raw.read_exact(&mut body).unwrap();
        assert_eq!(&body, b"response");

        // Clean close is reported as Closed, not an error.
        drop(raw);
        loop {
            match srx.recv().unwrap() {
                Received::Closed => break,
                Received::Idle => continue,
                Received::Frame(_) => panic!("unexpected frame"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut transport = TcpTransport::bind("127.0.0.1:0").unwrap();
        let addr = transport.local_addr();
        let mut raw = TcpStream::connect(addr).unwrap();
        let (mut srx, _stx) = loop {
            if let Some(conn) = transport.accept().unwrap() {
                break conn;
            }
        };
        raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
        let err = loop {
            match srx.recv() {
                Ok(Received::Idle) => continue,
                Ok(other) => panic!("expected error, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("cap"), "unhelpful: {err}");
    }
}
