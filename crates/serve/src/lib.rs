//! # `ive_serve` — a concurrent PIR serving runtime
//!
//! The functional protocol in `ive_pir` answers one query per synchronous
//! call; the paper's deployment analysis (§V, Fig. 14) assumes a *serving
//! layer* in front of it: clients register bulky key material once, the
//! online path ships only small queries, arrivals coalesce in a waiting
//! window, and batches dispatch to parallel workers over a sharded
//! database. This crate is that layer, end to end over the real wire
//! format of [`ive_pir::wire`]:
//!
//! * [`session`] — the ARK-style key cache (§V): one [`wire::Tag::Hello`]
//!   upload per client, a `u64` session id thereafter.
//! * [`batcher`] — the waiting-window batch scheduler of `ive_accel::queue`,
//!   running live: a window opens at the first in-flight query, and the
//!   accumulated batch dispatches to a worker pool with bounded queues for
//!   backpressure.
//! * [`engine`] — the database plane: a replicated single server, or a
//!   row-sharded ensemble whose shard answers recombine through the high
//!   tournament bits (the Fig. 7c hierarchy across workers).
//! * [`transport`] / [`tcp`] — one [`Transport`] trait, two carriers: an
//!   in-process channel pair for tests and benches, and a real
//!   `std::net::TcpListener` speaking length-delimited frames.
//! * [`metrics`] / [`trace`] — latency histogram, QPS, batch-size
//!   distribution, queue depth, per-stage log₂ histograms, kernel op
//!   rates, and a slow-query trace ring, snapshotted as [`ServerStats`]
//!   (scrapeable over any connection via [`wire::Tag::GetStats`], or as
//!   Prometheus text through [`ServerStats::to_prometheus`]).
//! * [`service`] / [`client`] — the assembled server and a blocking
//!   client; every client role ([`ServeClient`], [`UpdateClient`],
//!   [`KvClient`]) is built from one [`Connection`] handle.
//!
//! ## Quickstart
//!
//! ```
//! use ive_pir::{Database, PirParams};
//! use ive_serve::config::ServeConfig;
//! use ive_serve::transport::in_proc_pair;
//! use ive_serve::{PirService, ServeClient};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = PirParams::toy();
//! let records: Vec<Vec<u8>> = (0..params.num_records())
//!     .map(|i| format!("record #{i}").into_bytes())
//!     .collect();
//! let db = Database::from_records(&params, &records)?;
//!
//! let (transport, connector) = in_proc_pair();
//! let service = PirService::start(ServeConfig::default(), &params, db, Box::new(transport))?;
//!
//! let rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut client =
//!     ive_serve::Connection::new(connector.connect()?).into_serve_client(&params, rng)?;
//! let record = client.retrieve(7)?;
//! assert_eq!(&record[..records[7].len()], &records[7][..]);
//!
//! drop(client);
//! service.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! ## Live updates
//!
//! The database keeps serving while its contents change: with
//! [`ServeConfig::accept_updates`] opted in (updates carry no
//! authentication, so the default is read-only), a connection ships a
//! [`wire::Tag::UpdateRow`] batch (see [`UpdateClient`]), the handler
//! validates + NTT-preprocesses the deltas off the query
//! path, and the engine commits them as one epoch by swapping
//! epoch-versioned server snapshots — in-flight scans finish on the old
//! epoch, new queries see the new one, and answers stay bit-identical
//! to a cold rebuild at the same contents. Epoch and update counters
//! surface in [`ServerStats`].
//!
//! Three orthogonal hardening knobs layer onto that:
//!
//! * **Copy-on-write epochs** — a commit clones only the database pages
//!   its deltas touch ([`ive_pir::db::CowStats`] counts them), so commit
//!   cost is O(changed rows), not O(database).
//! * **A durable journal** — with [`ServeConfig::journal`] set, every
//!   accepted update batch is fsync'd to an on-disk log *before* it is
//!   staged, and replayed by [`PirService::start`] after a crash; the
//!   log truncates once its batches are committed into the store.
//! * **Response compression** — with [`ServeConfig::compress_responses`]
//!   set, answers modulus-switch down to one retained RNS prime before
//!   framing (Table VIII), shrinking the downlink severalfold.
//!
//! ## Private key-value store
//!
//! [`PirService::start_keyword`] serves *keyword* PIR over the same
//! transports: the database is a cuckoo-hashed [`ive_pir::KvStore`], the
//! handshake ships trace keys ([`wire::Tag::KsHello`]) and returns the
//! table schema, and [`KvClient::get`] privately retrieves a value *by
//! key* — the server never learns which key, or whether it was present.
//! Writers push [`wire::Tag::KvUpdate`] mutations that commit as CoW
//! epochs with read-your-writes visibility.
//!
//! ## Observability
//!
//! Every layer feeds one shared [`trace::TraceRecorder`]: connection
//! handlers time `Decode`, the dispatcher times `QueueWait`, the engine
//! times `Expand`/`RowSel`/`ColTor` (per shard) plus journal fsyncs and
//! epoch commits, and the workers time `Compress`/`Encode`. Queries over
//! [`ServeConfig::slow_threshold`] leave a full per-stage
//! [`trace::TraceRecord`] in a bounded ring. Any connection may send
//! [`wire::Tag::GetStats`] (see [`ServeClient::stats`]) and receives the
//! raw counters; [`ServerStats`] derives the rates, quantiles, and
//! roofline comparisons, identically in-process and over the wire.
//!
//! [`wire::Tag::UpdateRow`]: ive_pir::wire::Tag::UpdateRow
//! [`wire::Tag::KsHello`]: ive_pir::wire::Tag::KsHello
//! [`wire::Tag::KvUpdate`]: ive_pir::wire::Tag::KvUpdate
//! [`wire::Tag::GetStats`]: ive_pir::wire::Tag::GetStats

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod service;
pub mod session;
pub mod tcp;
pub mod trace;
pub mod transport;

pub use client::{Connection, KvClient, RetryCounters, RetryPolicy, ServeClient, UpdateClient};
pub use config::{ServeConfig, ShardPlan};
pub use engine::{KeywordEngine, ShardedEngine};
pub use metrics::{Metrics, ServerStats};
pub use service::{KeywordHandle, PirService, ServiceHandle};
pub use session::SessionManager;
pub use tcp::{TcpConnector, TcpTransport};
pub use trace::{Span, Stage, StageStats, StageTimer, TraceRecord, TraceRecorder};
pub use transport::{in_proc_pair, Connector, Transport};

/// Deterministic failpoints the chaos suite arms to inject transport
/// errors, torn frames, failed fsyncs, worker panics, and failed epoch
/// commits (re-exported from `ive_pir` so the whole stack shares one
/// registry). Disarmed — the default — every site check is one relaxed
/// atomic load.
pub use ive_pir::fault;

use ive_pir::{wire, PirError};

/// Errors produced by the serving runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Underlying protocol failure.
    Pir(PirError),
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The peer closed the connection.
    Closed,
    /// A blocking operation gave up waiting.
    Timeout,
    /// The server reported a per-request failure.
    Remote {
        /// The request the failure belongs to (0 for connection-level).
        request_id: u64,
        /// The server's error message.
        message: String,
    },
    /// The peer violated the session protocol.
    Protocol(String),
    /// The serving configuration is inconsistent.
    InvalidConfig(String),
    /// A query referenced a session id that was never registered.
    UnknownSession(u64),
    /// The admission queue is full: the service is running at its
    /// ceiling and sheds this request instead of queueing unbounded
    /// latency. A typed, retryable rejection — see [`ServeError::is_busy`].
    Busy {
        /// The admission queue bound that was hit.
        queue_depth: usize,
    },
}

impl From<PirError> for ServeError {
    fn from(e: PirError) -> Self {
        ServeError::Pir(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Pir(e) => write!(f, "protocol error: {e}"),
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::Closed => write!(f, "connection closed by peer"),
            ServeError::Timeout => write!(f, "timed out"),
            ServeError::Remote { request_id, message } => {
                write!(f, "server error for request {request_id}: {message}")
            }
            ServeError::Protocol(msg) => write!(f, "session protocol violation: {msg}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serving config: {msg}"),
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::Busy { queue_depth } => {
                write!(f, "{BUSY_MARKER} (admission queue of {queue_depth} is full; retry later)")
            }
        }
    }
}

/// The stable prefix of the [`ServeError::Busy`] wire message. Error
/// frames carry only a string, so clients recognize overload rejections
/// by this marker — keep it in sync with [`ServeError::is_busy`].
const BUSY_MARKER: &str = "server busy";

/// The stable prefix of the [`ServeError::UnknownSession`] wire message
/// (its `Display` form), used by the retrying client to recognize an
/// LRU-evicted session and re-Hello instead of failing the query.
const UNKNOWN_SESSION_MARKER: &str = "unknown session";

impl ServeError {
    /// Whether this error is an overload rejection — either a local
    /// [`ServeError::Busy`] or the remote wire form of one — so callers
    /// can back off and retry instead of treating it as a hard failure.
    pub fn is_busy(&self) -> bool {
        match self {
            ServeError::Busy { .. } => true,
            ServeError::Remote { message, .. } => message.contains(BUSY_MARKER),
            _ => false,
        }
    }

    /// Whether this error says the server no longer knows our session —
    /// either a local [`ServeError::UnknownSession`] or its remote wire
    /// form — so a client holding its key material can re-Hello and
    /// resume instead of surfacing the failure.
    pub fn is_unknown_session(&self) -> bool {
        match self {
            ServeError::UnknownSession(_) => true,
            ServeError::Remote { message, .. } => message.contains(UNKNOWN_SESSION_MARKER),
            _ => false,
        }
    }

    /// Whether this error is plausibly transient — a transport failure,
    /// timeout, or overload rejection a [`RetryPolicy`]-driven client
    /// may retry — as opposed to a protocol or configuration error
    /// retrying cannot fix.
    pub fn is_transient(&self) -> bool {
        match self {
            ServeError::Io(_) | ServeError::Closed | ServeError::Timeout => true,
            ServeError::Protocol(_) => true,
            other => other.is_busy(),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Pir(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Encodes a [`wire::Tag::Error`] frame from any [`ServeError`].
pub(crate) fn error_frame(request_id: u64, err: &dyn core::fmt::Display) -> bytes::Bytes {
    wire::encode_error_frame(request_id, &err.to_string())
}
