//! Serving metrics: request latency histogram, QPS, batch-size
//! distribution, queue depth, per-stage timings, and kernel op rates —
//! the live counterpart of the analytic load–latency curves in
//! `ive_accel::queue` (Fig. 14b).
//!
//! [`Metrics`] owns the raw lock-free counters plus the shared
//! [`TraceRecorder`]; [`Metrics::report`] freezes everything into the
//! integer-only wire payload ([`StatsReport`]), and [`ServerStats`]
//! derives every rate and quantile from that payload — so a stats
//! snapshot computed in-process and one scraped over a
//! [`wire::Tag::GetStats`](ive_pir::wire::Tag::GetStats) round-trip run
//! the exact same arithmetic.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ive_math::metrics::OpSnapshot;
use ive_pir::wire::{StageReport, StatsReport};

use crate::trace::{Stage, StageStats, TraceRecorder};

/// Number of log₂ latency buckets: bucket `i` counts requests whose
/// end-to-end latency lies in `[2^i, 2^(i+1))` microseconds; 40 buckets
/// reach ~12 days, far beyond any sane request.
const LATENCY_BUCKETS: usize = 40;

/// Lock-free accumulation of serving statistics. One instance is shared
/// by the connection handlers, the batcher, and the workers; the
/// embedded [`TraceRecorder`] is additionally shared with the engine.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    queries: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batch_query_sum: AtomicU64,
    batches_multi: AtomicU64,
    max_batch: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
    latency_sum_us: AtomicU64,
    latency_max_us: AtomicU64,
    queue_depth: AtomicUsize,
    queue_depth_max: AtomicUsize,
    busy_rejections: AtomicU64,
    /// LRU evictions in the session cache. Behind an `Arc` because the
    /// [`crate::SessionManager`] increments it directly (the cache does
    /// not otherwise know the metrics plane).
    session_evictions: Arc<AtomicU64>,
    update_batches: AtomicU64,
    updates_applied: AtomicU64,
    epoch: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
    worker_panics: AtomicU64,
    drained_jobs: AtomicU64,
    /// Kernel op counters at creation: the process-global counters in
    /// [`ive_math::metrics`] may already carry preprocessing work, so
    /// snapshots report the delta attributable to this service.
    ops_base: OpSnapshot,
    trace: Arc<TraceRecorder>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters with a default [`TraceRecorder`]; the uptime clock
    /// starts now.
    pub fn new() -> Self {
        Self::with_trace(Arc::new(TraceRecorder::new()))
    }

    /// Fresh counters around an existing recorder — the service wires
    /// the same recorder into the engine so every layer's stage samples
    /// land in one place.
    pub fn with_trace(trace: Arc<TraceRecorder>) -> Self {
        Metrics {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_query_sum: AtomicU64::new(0),
            batches_multi: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            latency: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            latency_sum_us: AtomicU64::new(0),
            latency_max_us: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_depth_max: AtomicUsize::new(0),
            busy_rejections: AtomicU64::new(0),
            session_evictions: Arc::default(),
            update_batches: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            drained_jobs: AtomicU64::new(0),
            ops_base: ive_math::metrics::snapshot(),
            trace,
        }
    }

    /// The shared per-stage recorder.
    pub fn trace(&self) -> &Arc<TraceRecorder> {
        &self.trace
    }

    /// One update batch of `applied` deltas committed as `epoch`.
    pub fn update_committed(&self, applied: usize, epoch: u64) {
        self.update_batches.fetch_add(1, Ordering::Relaxed);
        self.updates_applied.fetch_add(applied as u64, Ordering::Relaxed);
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// A query entered the waiting queue.
    pub fn job_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// A query left the waiting queue (joined a batch).
    pub fn job_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A query was shed at admission because the bounded queue was full
    /// (the typed `Busy` rejection — counted separately from server-side
    /// failures so overload is visible as overload).
    pub fn query_rejected_busy(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// The session-eviction counter, shared with the session cache: the
    /// service hands this to
    /// [`SessionManager::with_eviction_counter`](crate::SessionManager::with_eviction_counter)
    /// so LRU evictions surface in every stats snapshot.
    pub fn session_eviction_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.session_evictions)
    }

    /// A batch of `size` queries dispatched to a worker.
    pub fn batch_dispatched(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_query_sum.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
        if size > 1 {
            self.batches_multi.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One query finished successfully after the given end-to-end latency
    /// (enqueue → response frame handed to the transport).
    pub fn query_done(&self, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (us.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// One query failed server-side.
    pub fn query_failed(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection idled past its deadline and was closed.
    pub fn timeout_closed(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// A duplicate update request was answered from the idempotency
    /// cache instead of re-applied — the visible footprint of a client
    /// retrying an already-acked batch.
    pub fn retry_detected(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A Hello re-registered over a connection that already held a
    /// session (an evicted client recovering in place).
    pub fn reconnect_registered(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker panic was caught and isolated into typed error frames.
    pub fn worker_panicked(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// A queued job was answered while the service was draining.
    pub fn job_drained(&self) {
        self.drained_jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes every counter — including the stage histograms, kernel op
    /// deltas, and scan accounting — into the integer-only wire payload
    /// a [`wire::Tag::StatsResponse`](ive_pir::wire::Tag::StatsResponse)
    /// frame carries.
    pub fn report(&self) -> StatsReport {
        let ops = ive_math::metrics::snapshot().delta_since(&self.ops_base);
        StatsReport {
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_query_sum: self.batch_query_sum.load(Ordering::Relaxed),
            batches_multi: self.batches_multi.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed) as u64,
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed) as u64,
            update_batches: self.update_batches.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            uptime_us: self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            latency_sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            latency_max_us: self.latency_max_us.load(Ordering::Relaxed),
            latency_buckets: self.latency.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            stages: self
                .trace
                .stage_stats()
                .into_iter()
                .map(|s| StageReport {
                    count: s.count,
                    sum_us: s.sum_us,
                    max_us: s.max_us,
                    buckets: s.buckets,
                })
                .collect(),
            residue_ntts: ops.residue_ntts,
            pointwise_macs: ops.pointwise_macs,
            icrt_coeffs: ops.icrt_coeffs,
            auto_coeffs: ops.auto_coeffs,
            scan_bytes: self.trace.scan_bytes(),
            scan_ns: self.trace.scan_ns(),
            slow_queries: self.trace.slow_seen(),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            session_evictions: self.session_evictions.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            drained_jobs: self.drained_jobs.load(Ordering::Relaxed),
        }
    }

    /// A consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> ServerStats {
        ServerStats::from_report(&self.report())
    }
}

/// The value (ms) below which `q` of the histogram mass lies. Within the
/// matching log₂ bucket the quantile is resolved by *geometric*
/// interpolation — bucket `[2^i, 2^(i+1))` µs at rank fraction `f`
/// yields `2^i · 2^f` — instead of the bucket's upper edge (which
/// overstated the median by up to 2×). The clamp to the true observed
/// maximum stays: a coarse bucket's interpolated value can still exceed
/// every real sample.
fn quantile_from_log2_buckets(buckets: &[u64], q: f64, max_ms: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if seen + count >= target {
            let lo_us = (1u128 << i) as f64;
            let frac = (target - seen) as f64 / count as f64;
            return (lo_us * 2f64.powf(frac) / 1000.0).min(max_ms);
        }
        seen += count;
    }
    max_ms
}

/// A point-in-time view of the serving counters: every rate and quantile
/// derived from one raw [`StatsReport`], whether that report was read
/// in-process or scraped over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Queries that failed server-side.
    pub errors: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean dispatched batch size.
    pub avg_batch: f64,
    /// Largest dispatched batch.
    pub max_batch: usize,
    /// Batches that coalesced more than one query.
    pub batches_multi: u64,
    /// Served queries per second of uptime.
    pub qps: f64,
    /// Mean end-to-end latency (enqueue → response framed), ms.
    pub mean_latency_ms: f64,
    /// Median latency (log-interpolated within the matching bucket), ms.
    pub p50_latency_ms: f64,
    /// 95th-percentile latency (log-interpolated), ms.
    pub p95_latency_ms: f64,
    /// 99th-percentile latency (log-interpolated), ms.
    pub p99_latency_ms: f64,
    /// 99.9th-percentile latency (log-interpolated), ms — the tail the
    /// waiting-window analysis (Fig. 14b) trades mean latency for.
    pub p999_latency_ms: f64,
    /// Worst observed latency, ms.
    pub max_latency_ms: f64,
    /// End-to-end latency log₂ histogram (bucket `i` counts
    /// `[2^i, 2^(i+1))` µs) — the raw mass behind the quantiles, and the
    /// Prometheus `ive_latency_us` series.
    pub latency_buckets: Vec<u64>,
    /// Queries currently waiting for a window.
    pub queue_depth: usize,
    /// High-water mark of the waiting queue.
    pub max_queue_depth: usize,
    /// Update batches committed (each is one epoch boundary).
    pub update_batches: u64,
    /// Total row deltas committed.
    pub updates_applied: u64,
    /// The database epoch answers currently reflect.
    pub epoch: u64,
    /// Seconds since the metrics were created.
    pub uptime_s: f64,
    /// Per-stage duration histograms, in [`Stage::ALL`] order.
    pub stages: Vec<StageStats>,
    /// Residue-polynomial (i)NTT executions since the service started.
    pub residue_ntts: u64,
    /// Modular multiply-accumulates since the service started.
    pub pointwise_macs: u64,
    /// Coefficients reconstructed through iCRT since the service started.
    pub icrt_coeffs: u64,
    /// Coefficients moved through automorphisms since the service
    /// started.
    pub auto_coeffs: u64,
    /// Modular multiply-accumulates per second of uptime — the measured
    /// counterpart of the roofline device's `mult_per_s` axis.
    pub mults_per_s: f64,
    /// Database bytes streamed by `RowSel` scans.
    pub scan_bytes: u64,
    /// Effective `RowSel` scan bandwidth, GB/s (bytes over the scans'
    /// wall time) — compare against the DRAM roofline ceiling.
    pub scan_gbps: f64,
    /// Queries that crossed the slow-trace threshold.
    pub slow_queries: u64,
    /// Queries shed at admission with a typed `Busy` rejection (the
    /// bounded queue was full) — overload, counted as overload.
    pub busy_rejections: u64,
    /// Session-cache LRU evictions performed to admit new Hellos.
    pub session_evictions: u64,
    /// Connections closed after their idle deadline expired.
    pub timeouts: u64,
    /// Duplicate update requests answered from the idempotency cache
    /// instead of re-applied (clients retrying already-acked batches).
    pub retries: u64,
    /// Hellos that re-registered over a connection already holding a
    /// session (evicted clients recovering in place).
    pub reconnects: u64,
    /// Worker panics caught and isolated into typed error frames.
    pub worker_panics: u64,
    /// Queries answered while the service was draining for shutdown.
    pub drained_jobs: u64,
}

impl ServerStats {
    /// Derives every rate and quantile from a raw report — the single
    /// arithmetic shared by in-process snapshots and wire scrapes.
    pub fn from_report(report: &StatsReport) -> ServerStats {
        let uptime_s = report.uptime_us as f64 / 1e6;
        let queries = report.queries;
        let max_ms = report.latency_max_us as f64 / 1000.0;
        let quantile = |q| quantile_from_log2_buckets(&report.latency_buckets, q, max_ms);
        let stages = Stage::ALL
            .iter()
            .enumerate()
            .map(|(i, &stage)| {
                let r = report.stages.get(i).cloned().unwrap_or_default();
                StageStats {
                    stage,
                    count: r.count,
                    sum_us: r.sum_us,
                    max_us: r.max_us,
                    buckets: r.buckets,
                }
            })
            .collect();
        ServerStats {
            queries,
            errors: report.errors,
            batches: report.batches,
            avg_batch: if report.batches == 0 {
                0.0
            } else {
                report.batch_query_sum as f64 / report.batches as f64
            },
            max_batch: report.max_batch as usize,
            batches_multi: report.batches_multi,
            qps: if uptime_s > 0.0 { queries as f64 / uptime_s } else { 0.0 },
            mean_latency_ms: if queries == 0 {
                0.0
            } else {
                report.latency_sum_us as f64 / queries as f64 / 1000.0
            },
            p50_latency_ms: quantile(0.50),
            p95_latency_ms: quantile(0.95),
            p99_latency_ms: quantile(0.99),
            p999_latency_ms: quantile(0.999),
            max_latency_ms: max_ms,
            latency_buckets: report.latency_buckets.clone(),
            queue_depth: report.queue_depth as usize,
            max_queue_depth: report.queue_depth_max as usize,
            update_batches: report.update_batches,
            updates_applied: report.updates_applied,
            epoch: report.epoch,
            uptime_s,
            stages,
            residue_ntts: report.residue_ntts,
            pointwise_macs: report.pointwise_macs,
            icrt_coeffs: report.icrt_coeffs,
            auto_coeffs: report.auto_coeffs,
            mults_per_s: if uptime_s > 0.0 { report.pointwise_macs as f64 / uptime_s } else { 0.0 },
            scan_bytes: report.scan_bytes,
            scan_gbps: if report.scan_ns > 0 {
                report.scan_bytes as f64 / report.scan_ns as f64
            } else {
                0.0
            },
            slow_queries: report.slow_queries,
            busy_rejections: report.busy_rejections,
            session_evictions: report.session_evictions,
            timeouts: report.timeouts,
            retries: report.retries,
            reconnects: report.reconnects,
            worker_panics: report.worker_panics,
            drained_jobs: report.drained_jobs,
        }
    }

    /// The histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &StageStats {
        &self.stages[stage as usize]
    }

    /// Sum of the mean per-sample stage durations (ms) over the stages a
    /// served query passes through — the breakdown whose total should
    /// approximate the measured mean end-to-end latency.
    pub fn stage_sum_ms(&self) -> f64 {
        [Stage::Decode, Stage::QueueWait, Stage::Expand, Stage::RowSel, Stage::ColTor]
            .iter()
            .chain([Stage::Compress, Stage::Encode].iter())
            .map(|&s| {
                let st = self.stage(s);
                if self.queries == 0 {
                    0.0
                } else {
                    st.sum_us as f64 / self.queries as f64 / 1000.0
                }
            })
            .sum()
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// counters, gauges, and the log₂ histograms as cumulative buckets
    /// (each `le` edge is a power-of-two µs).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let counters: [(&str, &str, u64); 19] = [
            ("ive_queries_total", "Queries answered successfully.", self.queries),
            ("ive_errors_total", "Queries failed server-side.", self.errors),
            ("ive_batches_total", "Batches dispatched.", self.batches),
            ("ive_batches_multi_total", "Batches coalescing >1 query.", self.batches_multi),
            ("ive_update_batches_total", "Update batches committed.", self.update_batches),
            ("ive_updates_applied_total", "Row deltas committed.", self.updates_applied),
            ("ive_slow_queries_total", "Queries over the slow-trace threshold.", self.slow_queries),
            ("ive_kernel_residue_ntts_total", "Residue-polynomial (i)NTTs.", self.residue_ntts),
            (
                "ive_kernel_pointwise_macs_total",
                "Modular multiply-accumulates.",
                self.pointwise_macs,
            ),
            ("ive_kernel_icrt_coeffs_total", "Coefficients through iCRT.", self.icrt_coeffs),
            (
                "ive_kernel_auto_coeffs_total",
                "Coefficients through automorphisms.",
                self.auto_coeffs,
            ),
            ("ive_scan_bytes_total", "Database bytes streamed by RowSel.", self.scan_bytes),
            (
                "ive_busy_rejections_total",
                "Queries shed at admission (queue full).",
                self.busy_rejections,
            ),
            ("ive_session_evictions_total", "Session-cache LRU evictions.", self.session_evictions),
            ("ive_timeouts_total", "Connections closed at their idle deadline.", self.timeouts),
            (
                "ive_retries_total",
                "Duplicate updates answered from the idempotency cache.",
                self.retries,
            ),
            ("ive_reconnects_total", "Hellos re-registering a live connection.", self.reconnects),
            ("ive_worker_panics_total", "Worker panics caught and isolated.", self.worker_panics),
            ("ive_drained_jobs_total", "Queries answered while draining.", self.drained_jobs),
        ];
        for (name, help, value) in counters {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
        }
        let gauges: [(&str, &str, f64); 7] = [
            ("ive_queue_depth", "Queries waiting for a window.", self.queue_depth as f64),
            ("ive_queue_depth_max", "Waiting-queue high-water mark.", self.max_queue_depth as f64),
            ("ive_epoch", "Committed database epoch.", self.epoch as f64),
            ("ive_uptime_seconds", "Seconds since metrics creation.", self.uptime_s),
            ("ive_qps", "Served queries per second of uptime.", self.qps),
            ("ive_scan_gbps", "Effective RowSel scan bandwidth, GB/s.", self.scan_gbps),
            ("ive_kernel_mults_per_s", "Modular MACs per second of uptime.", self.mults_per_s),
        ];
        for (name, help, value) in gauges {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"));
        }
        write_histogram(
            &mut out,
            "ive_latency_us",
            "End-to-end query latency, microseconds.",
            None,
            &self.latency_buckets,
            self.latency_buckets.iter().sum(),
            (self.mean_latency_ms * self.queries as f64 * 1000.0) as u64,
        );
        out.push_str(
            "# HELP ive_stage_duration_us Per-stage pipeline duration, microseconds.\n\
             # TYPE ive_stage_duration_us histogram\n",
        );
        for stage in &self.stages {
            write_histogram_series(
                &mut out,
                "ive_stage_duration_us",
                Some(stage.stage.name()),
                &stage.buckets,
                stage.count,
                stage.sum_us,
            );
        }
        out
    }
}

/// Emits one complete histogram metric (HELP + TYPE + series).
fn write_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    stage: Option<&str>,
    buckets: &[u64],
    count: u64,
    sum: u64,
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    write_histogram_series(out, name, stage, buckets, count, sum);
}

/// Emits one histogram series: cumulative `_bucket` lines up to the last
/// occupied log₂ bucket, then `+Inf`, `_sum`, and `_count`.
fn write_histogram_series(
    out: &mut String,
    name: &str,
    stage: Option<&str>,
    buckets: &[u64],
    count: u64,
    sum: u64,
) {
    let label = |le: &str| match stage {
        Some(s) => format!("{{stage=\"{s}\",le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    };
    let plain = match stage {
        Some(s) => format!("{{stage=\"{s}\"}}"),
        None => String::new(),
    };
    let last = buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
    let mut cumulative = 0u64;
    for (i, &b) in buckets.iter().take(last).enumerate() {
        cumulative += b;
        let edge = (1u128 << (i + 1)).to_string();
        out.push_str(&format!("{name}_bucket{} {cumulative}\n", label(&edge)));
    }
    out.push_str(&format!("{name}_bucket{} {count}\n", label("+Inf")));
    out.push_str(&format!("{name}_sum{plain} {sum}\n"));
    out.push_str(&format!("{name}_count{plain} {count}\n"));
}

impl core::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} queries ({} errors) in {:.1}s = {:.1} QPS | {} batches (avg {:.2}, max {}, \
             {} multi) | latency ms: mean {:.1} p50 {:.1} p95 {:.1} p99 {:.1} p999 {:.1} \
             max {:.1} | queue depth {} (max {}) | epoch {} ({} updates in {} batches) | \
             scan {:.2} GB/s | {:.2e} MACs/s | {} slow | {} busy | {} evicted | \
             {} timeouts | {} retries | {} reconnects | {} panics | {} drained",
            self.queries,
            self.errors,
            self.uptime_s,
            self.qps,
            self.batches,
            self.avg_batch,
            self.max_batch,
            self.batches_multi,
            self.mean_latency_ms,
            self.p50_latency_ms,
            self.p95_latency_ms,
            self.p99_latency_ms,
            self.p999_latency_ms,
            self.max_latency_ms,
            self.queue_depth,
            self.max_queue_depth,
            self.epoch,
            self.updates_applied,
            self.update_batches,
            self.scan_gbps,
            self.mults_per_s,
            self.slow_queries,
            self.busy_rejections,
            self.session_evictions,
            self.timeouts,
            self.retries,
            self.reconnects,
            self.worker_panics,
            self.drained_jobs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.job_enqueued();
        m.job_enqueued();
        m.job_dequeued();
        m.batch_dispatched(1);
        m.batch_dispatched(3);
        m.query_done(Duration::from_millis(2));
        m.query_done(Duration::from_millis(40));
        m.query_failed();
        m.query_rejected_busy();
        m.query_rejected_busy();
        m.session_eviction_counter().fetch_add(3, Ordering::Relaxed);
        m.update_committed(5, 1);
        m.update_committed(2, 2);
        m.timeout_closed();
        m.retry_detected();
        m.retry_detected();
        m.reconnect_registered();
        m.worker_panicked();
        m.job_drained();
        let s = m.snapshot();
        assert_eq!(s.busy_rejections, 2);
        assert_eq!(s.session_evictions, 3);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.retries, 2);
        assert_eq!(s.reconnects, 1);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.drained_jobs, 1);
        assert_eq!(s.queries, 2);
        assert_eq!(s.update_batches, 2);
        assert_eq!(s.updates_applied, 7);
        assert_eq!(s.epoch, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 2);
        assert_eq!(s.max_batch, 3);
        assert_eq!(s.batches_multi, 1);
        assert!((s.avg_batch - 2.0).abs() < 1e-9);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.max_queue_depth, 2);
        assert!(s.mean_latency_ms > 1.0 && s.mean_latency_ms < 41.0);
        assert!(s.p50_latency_ms >= 2.0);
        assert!(s.p99_latency_ms >= s.p50_latency_ms);
        assert!(s.p999_latency_ms >= s.p99_latency_ms);
        assert!(s.max_latency_ms >= s.p999_latency_ms);
        assert!(s.max_latency_ms >= 40.0);
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), 2);
        assert!(s.to_string().contains("2 queries"));
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.queries, 0);
        assert_eq!(s.avg_batch, 0.0);
        assert_eq!(s.p99_latency_ms, 0.0);
        assert_eq!(s.p999_latency_ms, 0.0);
        assert_eq!(s.scan_gbps, 0.0);
        assert_eq!(s.slow_queries, 0);
        assert_eq!(s.stages.len(), Stage::COUNT);
    }

    #[test]
    fn quantiles_log_interpolate_within_the_matching_bucket() {
        // Three samples, all landing in bucket 10 ([1024, 2048) µs): the
        // quantile must interpolate geometrically by rank fraction, not
        // snap to the 2048 µs upper edge.
        let m = Metrics::new();
        m.query_done(Duration::from_micros(1200));
        m.query_done(Duration::from_micros(1500));
        m.query_done(Duration::from_micros(2000));
        let s = m.snapshot();
        // p50: target rank 2 of 3 → fraction 2/3 → 1024·2^(2/3) µs.
        let expect_p50 = 1.024 * 2f64.powf(2.0 / 3.0);
        assert!(
            (s.p50_latency_ms - expect_p50).abs() < 1e-9,
            "p50 {} != interpolated {expect_p50}",
            s.p50_latency_ms
        );
        assert!(s.p50_latency_ms < 2.048, "must not report the bucket's upper edge");
        // The tail interpolates to the bucket edge (2.048 ms) but clamps
        // to the true observed maximum (2.0 ms), never past a real sample.
        assert!((s.p999_latency_ms - 2.0).abs() < 1e-9);
        assert!((s.max_latency_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_match_exact_ranks_across_buckets() {
        // Ten samples spread over three buckets; every quantile resolves
        // inside the bucket holding its exact rank.
        let m = Metrics::new();
        for _ in 0..5 {
            m.query_done(Duration::from_micros(100)); // bucket 6 [64,128)
        }
        for _ in 0..4 {
            m.query_done(Duration::from_micros(1000)); // bucket 9 [512,1024)
        }
        m.query_done(Duration::from_micros(30_000)); // bucket 14 [16384,32768)
        let s = m.snapshot();
        // p50 → rank 5 of 10 → last of bucket 6 → 64·2^(5/5) = 128 µs.
        assert!((s.p50_latency_ms - 0.128).abs() < 1e-9, "p50 {}", s.p50_latency_ms);
        // p90 would be rank 9 → bucket 9's last → 1.024 ms; p95 → rank 10
        // → bucket 14 at fraction 1 → 32.768 ms, clamped to the 30 ms max.
        assert!((s.p95_latency_ms - 30.0).abs() < 1e-9, "p95 {}", s.p95_latency_ms);
        assert!(s.p50_latency_ms <= s.p95_latency_ms);
    }

    #[test]
    fn snapshot_round_trips_through_the_wire_report() {
        let m = Metrics::new();
        m.query_done(Duration::from_millis(3));
        m.batch_dispatched(1);
        m.trace().record(Stage::RowSel, Duration::from_micros(700));
        m.trace().record_scan(1 << 20, Duration::from_micros(500));
        let report = m.report();
        let direct = ServerStats::from_report(&report);
        // The wire carries the report bit-exactly (tested in ive_pir);
        // here: deriving twice from the same report is identical, and the
        // derived stage/scan numbers are faithful.
        assert_eq!(direct, ServerStats::from_report(&report));
        assert_eq!(direct.stage(Stage::RowSel).count, 1);
        assert_eq!(direct.stage(Stage::RowSel).sum_us, 700);
        assert_eq!(direct.scan_bytes, 1 << 20);
        // 1 MiB in 500 µs ≈ 2.097 GB/s.
        assert!((direct.scan_gbps - (1u64 << 20) as f64 / 500_000.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_exposition_golden_format() {
        // A hand-built snapshot with every derived field pinned, so the
        // exposition text is fully deterministic.
        let report = StatsReport {
            queries: 4,
            errors: 1,
            batches: 2,
            batch_query_sum: 4,
            batches_multi: 1,
            max_batch: 3,
            queue_depth: 1,
            queue_depth_max: 2,
            update_batches: 1,
            updates_applied: 5,
            epoch: 1,
            uptime_us: 2_000_000,
            latency_sum_us: 8_000,
            latency_max_us: 3_000,
            latency_buckets: {
                let mut b = vec![0u64; 40];
                b[10] = 3; // [1024, 2048) µs
                b[11] = 1; // [2048, 4096) µs
                b
            },
            stages: {
                let mut stages = vec![StageReport::default(); Stage::COUNT];
                stages[Stage::RowSel as usize] =
                    StageReport { count: 2, sum_us: 600, max_us: 400, buckets: vec![0; 32] };
                stages[Stage::RowSel as usize].buckets[8] = 2; // [256, 512) µs
                stages
            },
            residue_ntts: 10,
            pointwise_macs: 2_000_000,
            icrt_coeffs: 20,
            auto_coeffs: 30,
            scan_bytes: 4_000_000_000,
            scan_ns: 2_000_000_000,
            slow_queries: 1,
            busy_rejections: 6,
            session_evictions: 9,
            timeouts: 2,
            retries: 7,
            reconnects: 3,
            worker_panics: 1,
            drained_jobs: 8,
        };
        let text = ServerStats::from_report(&report).to_prometheus();
        for needle in [
            "# TYPE ive_queries_total counter\nive_queries_total 4\n",
            "# TYPE ive_errors_total counter\nive_errors_total 1\n",
            "ive_slow_queries_total 1\n",
            "ive_kernel_pointwise_macs_total 2000000\n",
            "ive_scan_bytes_total 4000000000\n",
            "# TYPE ive_busy_rejections_total counter\nive_busy_rejections_total 6\n",
            "# TYPE ive_session_evictions_total counter\nive_session_evictions_total 9\n",
            "# TYPE ive_timeouts_total counter\nive_timeouts_total 2\n",
            "# TYPE ive_retries_total counter\nive_retries_total 7\n",
            "# TYPE ive_reconnects_total counter\nive_reconnects_total 3\n",
            "# TYPE ive_worker_panics_total counter\nive_worker_panics_total 1\n",
            "# TYPE ive_drained_jobs_total counter\nive_drained_jobs_total 8\n",
            "# TYPE ive_queue_depth gauge\nive_queue_depth 1\n",
            "ive_uptime_seconds 2\n",
            "ive_qps 2\n",
            "ive_scan_gbps 2\n",
            "ive_kernel_mults_per_s 1000000\n",
            "# TYPE ive_latency_us histogram\n",
            "ive_latency_us_bucket{le=\"2048\"} 3\n",
            "ive_latency_us_bucket{le=\"4096\"} 4\n",
            "ive_latency_us_bucket{le=\"+Inf\"} 4\n",
            "ive_latency_us_sum 8000\n",
            "ive_latency_us_count 4\n",
            "# TYPE ive_stage_duration_us histogram\n",
            "ive_stage_duration_us_bucket{stage=\"row_sel\",le=\"512\"} 2\n",
            "ive_stage_duration_us_bucket{stage=\"row_sel\",le=\"+Inf\"} 2\n",
            "ive_stage_duration_us_sum{stage=\"row_sel\"} 600\n",
            "ive_stage_duration_us_count{stage=\"row_sel\"} 2\n",
            "ive_stage_duration_us_bucket{stage=\"decode\",le=\"+Inf\"} 0\n",
        ] {
            assert!(text.contains(needle), "exposition missing:\n{needle}\nfull text:\n{text}");
        }
        // Cumulative buckets stop at the last occupied edge: no stray
        // empty-edge lines between the data and +Inf.
        assert!(!text.contains("le=\"8192\""));
        // Every line is a comment or `name[{labels}] value` — the format
        // a Prometheus scraper parses.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.splitn(2, ' ').count() == 2,
                "unparseable line: {line}"
            );
        }
    }
}
