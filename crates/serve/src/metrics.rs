//! Serving metrics: request latency histogram, QPS, batch-size
//! distribution, and queue depth — the live counterpart of the analytic
//! load–latency curves in `ive_accel::queue` (Fig. 14b).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Number of log₂ latency buckets: bucket `i` counts requests whose
/// end-to-end latency lies in `[2^i, 2^(i+1))` microseconds; 40 buckets
/// reach ~12 days, far beyond any sane request.
const LATENCY_BUCKETS: usize = 40;

/// Lock-free accumulation of serving statistics. One instance is shared
/// by the connection handlers, the batcher, and the workers.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    queries: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batch_query_sum: AtomicU64,
    batches_multi: AtomicU64,
    max_batch: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
    latency_sum_us: AtomicU64,
    latency_max_us: AtomicU64,
    queue_depth: AtomicUsize,
    queue_depth_max: AtomicUsize,
    update_batches: AtomicU64,
    updates_applied: AtomicU64,
    epoch: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters; the uptime clock starts now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_query_sum: AtomicU64::new(0),
            batches_multi: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            latency: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            latency_sum_us: AtomicU64::new(0),
            latency_max_us: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_depth_max: AtomicUsize::new(0),
            update_batches: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// One update batch of `applied` deltas committed as `epoch`.
    pub fn update_committed(&self, applied: usize, epoch: u64) {
        self.update_batches.fetch_add(1, Ordering::Relaxed);
        self.updates_applied.fetch_add(applied as u64, Ordering::Relaxed);
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// A query entered the waiting queue.
    pub fn job_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// A query left the waiting queue (joined a batch).
    pub fn job_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A batch of `size` queries dispatched to a worker.
    pub fn batch_dispatched(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_query_sum.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
        if size > 1 {
            self.batches_multi.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One query finished successfully after the given end-to-end latency
    /// (enqueue → response frame handed to the transport).
    pub fn query_done(&self, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (us.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// One query failed server-side.
    pub fn query_failed(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// The latency value (ms) below which `q` of the recorded mass lies,
    /// resolved to the upper edge of the matching log₂ bucket and clamped
    /// to the true observed maximum (a coarse bucket's edge can otherwise
    /// exceed every real sample).
    fn latency_quantile_ms(&self, q: f64) -> f64 {
        let total: u64 = self.latency.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0.0;
        }
        let max_ms = self.latency_max_us.load(Ordering::Relaxed) as f64 / 1000.0;
        let target = (q * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.latency.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return ((1u64 << (i + 1)) as f64 / 1000.0).min(max_ms);
            }
        }
        max_ms
    }

    /// A consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> ServerStats {
        let queries = self.queries.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        ServerStats {
            queries,
            errors: self.errors.load(Ordering::Relaxed),
            batches,
            avg_batch: if batches == 0 {
                0.0
            } else {
                self.batch_query_sum.load(Ordering::Relaxed) as f64 / batches as f64
            },
            max_batch: self.max_batch.load(Ordering::Relaxed) as usize,
            batches_multi: self.batches_multi.load(Ordering::Relaxed),
            qps: if uptime.as_secs_f64() > 0.0 {
                queries as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            mean_latency_ms: if queries == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / queries as f64 / 1000.0
            },
            p50_latency_ms: self.latency_quantile_ms(0.50),
            p95_latency_ms: self.latency_quantile_ms(0.95),
            p99_latency_ms: self.latency_quantile_ms(0.99),
            p999_latency_ms: self.latency_quantile_ms(0.999),
            max_latency_ms: self.latency_max_us.load(Ordering::Relaxed) as f64 / 1000.0,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.queue_depth_max.load(Ordering::Relaxed),
            update_batches: self.update_batches.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            uptime_s: uptime.as_secs_f64(),
        }
    }
}

/// A point-in-time view of the serving counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Queries that failed server-side.
    pub errors: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean dispatched batch size.
    pub avg_batch: f64,
    /// Largest dispatched batch.
    pub max_batch: usize,
    /// Batches that coalesced more than one query.
    pub batches_multi: u64,
    /// Served queries per second of uptime.
    pub qps: f64,
    /// Mean end-to-end latency (enqueue → response framed), ms.
    pub mean_latency_ms: f64,
    /// Median latency (log-bucket upper edge), ms.
    pub p50_latency_ms: f64,
    /// 95th-percentile latency (log-bucket upper edge), ms.
    pub p95_latency_ms: f64,
    /// 99th-percentile latency (log-bucket upper edge), ms.
    pub p99_latency_ms: f64,
    /// 99.9th-percentile latency (log-bucket upper edge), ms — the tail
    /// the waiting-window analysis (Fig. 14b) trades mean latency for.
    pub p999_latency_ms: f64,
    /// Worst observed latency, ms.
    pub max_latency_ms: f64,
    /// Queries currently waiting for a window.
    pub queue_depth: usize,
    /// High-water mark of the waiting queue.
    pub max_queue_depth: usize,
    /// Update batches committed (each is one epoch boundary).
    pub update_batches: u64,
    /// Total row deltas committed.
    pub updates_applied: u64,
    /// The database epoch answers currently reflect.
    pub epoch: u64,
    /// Seconds since the metrics were created.
    pub uptime_s: f64,
}

impl core::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} queries ({} errors) in {:.1}s = {:.1} QPS | {} batches (avg {:.2}, max {}, \
             {} multi) | latency ms: mean {:.1} p50 {:.1} p95 {:.1} p99 {:.1} p999 {:.1} \
             max {:.1} | queue depth {} (max {}) | epoch {} ({} updates in {} batches)",
            self.queries,
            self.errors,
            self.uptime_s,
            self.qps,
            self.batches,
            self.avg_batch,
            self.max_batch,
            self.batches_multi,
            self.mean_latency_ms,
            self.p50_latency_ms,
            self.p95_latency_ms,
            self.p99_latency_ms,
            self.p999_latency_ms,
            self.max_latency_ms,
            self.queue_depth,
            self.max_queue_depth,
            self.epoch,
            self.updates_applied,
            self.update_batches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.job_enqueued();
        m.job_enqueued();
        m.job_dequeued();
        m.batch_dispatched(1);
        m.batch_dispatched(3);
        m.query_done(Duration::from_millis(2));
        m.query_done(Duration::from_millis(40));
        m.query_failed();
        m.update_committed(5, 1);
        m.update_committed(2, 2);
        let s = m.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.update_batches, 2);
        assert_eq!(s.updates_applied, 7);
        assert_eq!(s.epoch, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 2);
        assert_eq!(s.max_batch, 3);
        assert_eq!(s.batches_multi, 1);
        assert!((s.avg_batch - 2.0).abs() < 1e-9);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.max_queue_depth, 2);
        assert!(s.mean_latency_ms > 1.0 && s.mean_latency_ms < 41.0);
        assert!(s.p50_latency_ms >= 2.0);
        assert!(s.p99_latency_ms >= s.p50_latency_ms);
        assert!(s.p999_latency_ms >= s.p99_latency_ms);
        assert!(s.max_latency_ms >= s.p999_latency_ms);
        assert!(s.max_latency_ms >= 40.0);
        assert!(s.to_string().contains("2 queries"));
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.queries, 0);
        assert_eq!(s.avg_batch, 0.0);
        assert_eq!(s.p99_latency_ms, 0.0);
        assert_eq!(s.p999_latency_ms, 0.0);
    }
}
