//! Serving configuration: waiting window, batch and queue bounds, worker
//! pool size, the database sharding plan, response compression, and the
//! durable update journal.

use std::path::PathBuf;
use std::time::Duration;

use ive_accel::queue::ServiceTable;
use ive_pir::{BackendKind, TournamentOrder};

use crate::ServeError;

/// How the preprocessed database is spread across the worker plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPlan {
    /// One logical copy shared by every worker (an `Arc`, not a byte
    /// copy): workers take whole batches in parallel.
    Replicated,
    /// The row dimension is split into `shards` aligned blocks; each
    /// shard answers the low tournament levels of every query in a batch
    /// and the high bits recombine the shard winners (Fig. 7c across
    /// workers instead of cache levels).
    RowSharded {
        /// Number of row shards (a power of two, at most `2^d`).
        shards: usize,
    },
}

/// Configuration for [`crate::PirService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Waiting window: how long the batcher holds the first in-flight
    /// query open for companions (§V; `0` disables batching delay).
    pub window: Duration,
    /// Largest batch one dispatch may carry.
    pub max_batch: usize,
    /// Worker threads consuming dispatched batches.
    pub workers: usize,
    /// Bound of the in-flight job queue; submissions block (backpressure)
    /// once this many queries are waiting for a window.
    pub queue_depth: usize,
    /// Database sharding plan.
    pub shard: ShardPlan,
    /// `RowSel` threads *inside* each `PirServer`: the row scan of every
    /// batch splits across this many workers. Keep it at 1 when
    /// `workers × shards` already covers the machine; the pools multiply.
    pub rowsel_threads: usize,
    /// `ColTor` traversal order used by every shard.
    pub order: TournamentOrder,
    /// Which VPE kernel backend every pipeline step dispatches through.
    /// Backends are bit-identical in output: `Auto` (the default) picks
    /// the fastest the host supports — the AVX-512/IFMA `Avx512`
    /// backend where runtime detection finds `avx512f`, the AVX2 `Simd`
    /// backend below that, the Barrett/Shoup `Optimized` path everywhere
    /// else; `Avx512` and `Simd` request their ISA tier explicitly (with
    /// the same safe fallback chain), and `Scalar` is the reference
    /// oracle. Parse config strings with
    /// [`ServeConfig::with_backend_name`].
    pub backend: BackendKind,
    /// Upper bound on cached sessions: each registration pins hundreds
    /// of KB of key material server-side, so an uncapped cache is a
    /// remote memory-exhaustion vector. Registrations beyond the cap are
    /// rejected until sessions are evicted.
    pub max_sessions: usize,
    /// Whether [`wire::Tag::UpdateRow`] frames are admitted. Updates
    /// carry no authentication, so **any** peer that can reach the
    /// transport could mutate the database; the default is therefore
    /// `false` (read-only — update frames are answered with an error
    /// frame). Opt in only on transports whose reachability *is* the
    /// admission control (an internal ingest port, an in-proc pair, a
    /// mutually-authenticated tunnel); each accepted batch then commits
    /// as one epoch.
    ///
    /// [`wire::Tag::UpdateRow`]: ive_pir::wire::Tag::UpdateRow
    pub accept_updates: bool,
    /// Ship responses modulus-switched to the minimum retained prime
    /// count (Table VIII's response compression): the worker runs
    /// `switch_to_first_prime` and the response travels as a
    /// [`wire::Tag::CompressedResponse`] frame carrying only the
    /// surviving residues. Decode cost is unchanged client-side; the
    /// downlink shrinks by `k / primes`. Off by default because
    /// compressed responses spend part of the noise budget — enable it
    /// where measured noise margins allow (they do for both the toy and
    /// paper parameter sets).
    ///
    /// [`wire::Tag::CompressedResponse`]: ive_pir::wire::Tag::CompressedResponse
    pub compress_responses: bool,
    /// Durable staging journal: when set, every accepted update batch is
    /// appended (fsync'd) to this file *before* it commits, and the file
    /// is truncated at each commit checkpoint. On startup the service
    /// replays any batches a crash left behind, so
    /// staged-but-uncommitted updates survive process death. `None`
    /// (default) keeps updates memory-only.
    pub journal: Option<PathBuf>,
    /// Queries whose end-to-end latency meets this threshold leave a
    /// [`TraceRecord`](crate::trace::TraceRecord) (per-stage durations,
    /// session, batch size, epoch) in the slow-query ring.
    pub slow_threshold: Duration,
    /// Capacity of the slow-query trace ring; `0` disables retention
    /// (the slow counter still counts).
    pub trace_ring: usize,
    /// Per-connection idle deadline: a connection that delivers no frame
    /// for this long is closed (counted in `ServerStats.timeouts`), so a
    /// silent or wedged peer can pin a handler thread only this long.
    /// `None` disables the deadline; the default is 60 s — generous for
    /// interactive clients, tight enough that handler threads of dead
    /// peers drain within a minute.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        ServeConfig {
            window: Duration::from_millis(4),
            max_batch: 8,
            workers: (cores / 2).max(1),
            queue_depth: 64,
            shard: ShardPlan::Replicated,
            rowsel_threads: 1,
            order: TournamentOrder::Hs { subtree_depth: 2 },
            backend: BackendKind::default(),
            max_sessions: 4096,
            accept_updates: false,
            compress_responses: false,
            journal: None,
            slow_threshold: Duration::from_millis(250),
            trace_ring: 64,
            idle_timeout: Some(Duration::from_secs(60)),
        }
    }
}

impl ServeConfig {
    /// Selects the kernel backend by its config/CLI name (`"scalar"`,
    /// `"optimized"`, `"simd"`, `"avx512"`, `"auto"`), as parsed by
    /// [`BackendKind`]'s `FromStr`.
    ///
    /// # Errors
    /// Unknown names are rejected with a [`ServeError::InvalidConfig`]
    /// that names every valid variant — a typo'd backend must fail
    /// loudly, never silently fall back to the default.
    pub fn with_backend_name(mut self, name: &str) -> Result<Self, ServeError> {
        self.backend =
            name.parse::<BackendKind>().map_err(|e| ServeError::InvalidConfig(e.to_string()))?;
        Ok(self)
    }

    /// Derives the admission queue bound from a measured [`ServiceTable`]:
    /// the queue admits at most `max_wait` worth of work at the engine's
    /// saturation throughput, so the *worst-case queueing delay* of an
    /// admitted query is bounded by `max_wait` — anything beyond that is
    /// shed as [`ServeError::Busy`] instead of converting overload into
    /// unbounded latency (Little's law: depth = λ_max × W_max). The
    /// derived depth is clamped to `[workers, 65_536]` so a slow table
    /// can never starve the worker pool of in-flight work.
    pub fn with_admission_ceiling(mut self, service: &ServiceTable, max_wait: Duration) -> Self {
        let depth = (service.max_throughput_qps() * max_wait.as_secs_f64()).ceil() as usize;
        self.queue_depth = depth.clamp(self.workers.max(1), 65_536);
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    /// Fails on zero-sized pools/bounds or a non-power-of-two shard count.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::InvalidConfig("queue_depth must be >= 1".into()));
        }
        if self.rowsel_threads == 0 {
            return Err(ServeError::InvalidConfig("rowsel_threads must be >= 1".into()));
        }
        if self.max_sessions == 0 {
            return Err(ServeError::InvalidConfig("max_sessions must be >= 1".into()));
        }
        if let ShardPlan::RowSharded { shards } = self.shard {
            if shards == 0 || !shards.is_power_of_two() {
                return Err(ServeError::InvalidConfig(format!(
                    "row shard count {shards} must be a power of two >= 1"
                )));
            }
        }
        if let Some(path) = &self.journal {
            if path.as_os_str().is_empty() {
                return Err(ServeError::InvalidConfig("journal path must be non-empty".into()));
            }
        }
        if self.idle_timeout == Some(Duration::ZERO) {
            return Err(ServeError::InvalidConfig(
                "idle_timeout must be positive (use None to disable)".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServeConfig::default().validate().expect("default must validate");
    }

    #[test]
    fn backend_names_parse_and_unknown_names_fail_loudly() {
        for (name, kind) in [
            ("scalar", BackendKind::Scalar),
            ("optimized", BackendKind::Optimized),
            ("simd", BackendKind::Simd),
            ("avx512", BackendKind::Avx512),
            ("auto", BackendKind::Auto),
        ] {
            let cfg = ServeConfig::default().with_backend_name(name).expect("valid name");
            assert_eq!(cfg.backend, kind, "{name}");
        }
        let err = ServeConfig::default().with_backend_name("fastest").expect_err("must reject");
        let msg = err.to_string();
        for name in
            ["\"fastest\"", "\"scalar\"", "\"optimized\"", "\"simd\"", "\"avx512\"", "\"auto\""]
        {
            assert!(msg.contains(name), "error must name {name}: {msg}");
        }
    }

    #[test]
    fn admission_ceiling_tracks_service_throughput() {
        // A table that serves 1000 qps at saturation with a 100 ms wait
        // ceiling admits 100 queued queries — Little's law, exactly.
        let service = ServiceTable::from_fn(4, |b| b as f64 / 1000.0);
        let cfg = ServeConfig { workers: 2, ..ServeConfig::default() }
            .with_admission_ceiling(&service, Duration::from_millis(100));
        assert_eq!(cfg.queue_depth, 100);
        // A glacial engine still leaves the worker pool fed.
        let slow = ServiceTable::from_fn(1, |_| 1000.0);
        let cfg = ServeConfig { workers: 3, ..ServeConfig::default() }
            .with_admission_ceiling(&slow, Duration::from_millis(100));
        assert_eq!(cfg.queue_depth, 3, "clamped to the worker count");
        cfg.validate().expect("derived config must validate");
    }

    #[test]
    fn bad_configs_rejected() {
        for bad in [
            ServeConfig { max_batch: 0, ..ServeConfig::default() },
            ServeConfig { workers: 0, ..ServeConfig::default() },
            ServeConfig { queue_depth: 0, ..ServeConfig::default() },
            ServeConfig { rowsel_threads: 0, ..ServeConfig::default() },
            ServeConfig { max_sessions: 0, ..ServeConfig::default() },
            ServeConfig { shard: ShardPlan::RowSharded { shards: 3 }, ..ServeConfig::default() },
            ServeConfig { shard: ShardPlan::RowSharded { shards: 0 }, ..ServeConfig::default() },
            ServeConfig { journal: Some(PathBuf::new()), ..ServeConfig::default() },
            ServeConfig { idle_timeout: Some(Duration::ZERO), ..ServeConfig::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }
}
