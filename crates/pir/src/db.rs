//! Database packing and preprocessing (§II-B).
//!
//! Every record is reinterpreted as `N` chunks of `log P` bits and packed
//! into one plaintext polynomial of `R_P` (Fig. 1-③). Preprocessing then
//! lifts each polynomial into `R_Q` with CRT and NTT applied *offline*, so
//! that `RowSel` becomes pure pointwise multiply-accumulate — the paper
//! measures this preprocessing to speed PIR by more than 3.9× on CPU.
//!
//! The preprocessed records live in **copy-on-write row pages**: one
//! contiguous limb-major block of `D0 × k × n` words per matrix row,
//! shared behind an `Arc`. Within a page, record `(r, i)` occupies `k·n`
//! consecutive words with its limb rows adjacent, so the `RowSel` scan
//! still walks each row as a single forward stream — the
//! memory-bandwidth-bound access pattern IVE's PEs are built around
//! (§IV-B). Across epochs the pages are what makes mutation cheap:
//! cloning a database (the engine's epoch snapshot) clones `Arc`s, not
//! words, and [`Database::apply_updates`] copies **only the pages it
//! touches** (`Arc::make_mut`), so commit cost is O(deltas), not O(DB).
//!
//! ```text
//! pages[r]: | rec(r,0): limb0[n] limb1[n] … | rec(r,1): … | … | rec(r,D0-1) |
//!             └────── k·n words, NTT form ──────┘
//! ```

use std::sync::Arc;

use rand::Rng;

use ive_he::{HeParams, Plaintext};
use ive_math::rns::{Form, RingContext, RnsPoly};

use crate::params::PirParams;
use crate::update::PreparedUpdate;
use crate::PirError;

/// Cumulative copy-on-write accounting for one database lineage.
///
/// Counters are carried along by [`Clone`], so an engine that snapshots a
/// database per epoch can diff them across commits to prove how much was
/// *actually* copied (the acceptance metric for O(deltas) commits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Row pages that were physically duplicated because they were shared
    /// with another snapshot (or the shared all-zero tail page) at write
    /// time.
    pub pages_copied: u64,
    /// Total words those duplications copied.
    pub words_copied: u64,
}

/// A preprocessed PIR database: one NTT-form `R_Q` polynomial per record,
/// stored row-major over the `(D/D0) × D0` matrix view of Fig. 5 as
/// copy-on-write row pages (`Arc<Vec<u64>>`, one per row).
///
/// The pages are *mutable under version control*: committed
/// [`PreparedUpdate`] batches splice new record words into the touched
/// pages only (untouched pages stay shared with older snapshots) and bump
/// the [`Database::epoch`], so a long-running server ingests content
/// changes without a rebuild and without re-copying the cold bulk of the
/// database (see [`crate::update`]).
#[derive(Debug, Clone)]
pub struct Database {
    ctx: Arc<RingContext>,
    /// One limb-major page of `d0 · k · n` words per matrix row.
    pages: Vec<Arc<Vec<u64>>>,
    d0: usize,
    /// Words per record (`k · n`).
    rec_words: usize,
    /// Number of committed update batches absorbed since load.
    epoch: u64,
    /// Pages physically copied by [`Database::apply_updates`] (cumulative).
    cow_pages: u64,
    /// Words physically copied by [`Database::apply_updates`] (cumulative).
    cow_words: u64,
}

impl Database {
    /// Packs and preprocesses byte records.
    ///
    /// Records shorter than [`PirParams::record_bytes`] are zero-padded;
    /// missing trailing records are all-zero (trailing all-zero rows
    /// share one physical page). Supplying more records than `D`, or a
    /// record that exceeds the capacity, is an error.
    ///
    /// # Errors
    /// Returns [`PirError::RecordTooLarge`] / [`PirError::TooManyRecords`].
    pub fn from_records(params: &PirParams, records: &[Vec<u8>]) -> Result<Self, PirError> {
        if records.len() > params.num_records() {
            return Err(PirError::TooManyRecords {
                got: records.len(),
                capacity: params.num_records(),
            });
        }
        let capacity = params.record_bytes();
        let he = params.he();
        let ctx = Arc::clone(he.ring());
        let rec_words = ctx.basis().len() * ctx.n();
        let d0 = params.d0();
        let page_words = d0 * rec_words;
        let num_rows = params.num_records() / d0;
        let mut pages = Vec::with_capacity(num_rows);
        let mut cur = Vec::with_capacity(page_words);
        for (i, rec) in records.iter().enumerate() {
            if rec.len() > capacity {
                return Err(PirError::RecordTooLarge { index: i, len: rec.len(), capacity });
            }
            cur.extend_from_slice(pack_record(he, rec)?.as_words());
            if cur.len() == page_words {
                pages.push(Arc::new(std::mem::replace(&mut cur, Vec::with_capacity(page_words))));
            }
        }
        if !cur.is_empty() {
            // Pad the partial trailing row; NTT(0) = 0.
            cur.resize(page_words, 0);
            pages.push(Arc::new(cur));
        }
        if pages.len() < num_rows {
            // Missing trailing rows are all-zero: one shared physical
            // page stands in for all of them until a write lands.
            let zero = Arc::new(vec![0u64; page_words]);
            pages.resize_with(num_rows, || Arc::clone(&zero));
        }
        Ok(Database { ctx, pages, d0, rec_words, epoch: 0, cow_pages: 0, cow_words: 0 })
    }

    /// A uniformly random database (benchmarks and property tests).
    pub fn random<R: Rng + ?Sized>(params: &PirParams, rng: &mut R) -> Self {
        let he = params.he();
        let ctx = Arc::clone(he.ring());
        let rec_words = ctx.basis().len() * ctx.n();
        let d0 = params.d0();
        let page_words = d0 * rec_words;
        let num_rows = params.num_records() / d0;
        let mut pages = Vec::with_capacity(num_rows);
        let mut cur = Vec::with_capacity(page_words);
        for _ in 0..params.num_records() {
            let vals: Vec<u64> = (0..he.n()).map(|_| rng.gen_range(0..he.p())).collect();
            let poly = Plaintext::new(he, vals).expect("sampled below P").to_ntt_poly(he);
            cur.extend_from_slice(poly.as_words());
            if cur.len() == page_words {
                pages.push(Arc::new(std::mem::replace(&mut cur, Vec::with_capacity(page_words))));
            }
        }
        Database { ctx, pages, d0, rec_words, epoch: 0, cow_pages: 0, cow_words: 0 }
    }

    /// Number of record polynomials.
    #[inline]
    pub fn len(&self) -> usize {
        self.pages.len() * self.d0
    }

    /// Whether the database holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The flat limb words (`k · n`, residue-major, NTT form) of record
    /// `(row, col)` — what the `RowSel` kernel scan consumes.
    #[inline]
    pub fn poly_words(&self, row: usize, col: usize) -> &[u64] {
        let start = col * self.rec_words;
        &self.pages[row][start..start + self.rec_words]
    }

    /// The flat limb words of flat record `index`.
    #[inline]
    pub fn poly_words_flat(&self, index: usize) -> &[u64] {
        self.poly_words(index / self.d0, index % self.d0)
    }

    /// The whole database concatenated into one buffer
    /// (`rows × D0 × k × n` words) — a copy; rebuild-equivalence tests
    /// only, hot paths scan per-row via [`Database::poly_words`].
    pub fn to_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.pages.len() * self.page_words());
        for page in &self.pages {
            out.extend_from_slice(page);
        }
        out
    }

    /// Words per record polynomial (`k · n`).
    #[inline]
    pub fn record_words(&self) -> usize {
        self.rec_words
    }

    /// Words per copy-on-write row page (`D0 · k · n`).
    #[inline]
    pub fn page_words(&self) -> usize {
        self.d0 * self.rec_words
    }

    /// Cumulative copy-on-write accounting (see [`CowStats`]).
    #[inline]
    pub fn cow_stats(&self) -> CowStats {
        CowStats { pages_copied: self.cow_pages, words_copied: self.cow_words }
    }

    /// Number of row pages whose storage is currently shared with another
    /// snapshot (or the all-zero tail page) — i.e. pages a write would
    /// have to duplicate.
    pub fn shared_pages(&self) -> usize {
        self.pages.iter().filter(|p| Arc::strong_count(p) > 1).count()
    }

    /// The ring the records are preprocessed into.
    #[inline]
    pub fn ring(&self) -> &Arc<RingContext> {
        &self.ctx
    }

    /// Materializes the preprocessed polynomial of record `(row, col)` —
    /// a copy; cold paths and tests only, the scan uses
    /// [`Database::poly_words`].
    pub fn poly(&self, row: usize, col: usize) -> RnsPoly {
        RnsPoly::from_words(&self.ctx, Form::Ntt, self.poly_words(row, col).to_vec())
            .expect("record slice has ring shape")
    }

    /// Materializes the preprocessed polynomial of flat record `index`.
    pub fn poly_flat(&self, index: usize) -> RnsPoly {
        RnsPoly::from_words(&self.ctx, Form::Ntt, self.poly_words_flat(index).to_vec())
            .expect("record slice has ring shape")
    }

    /// First-dimension width `D0`.
    #[inline]
    pub fn d0(&self) -> usize {
        self.d0
    }

    /// Number of rows (`D / D0`) in the matrix view.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.pages.len()
    }

    /// Extracts the contiguous row range `[row_start, row_start + rows)`
    /// as a standalone database — the row-sharding hook. Because `ColTor`
    /// consumes row-index bits LSB first, an aligned power-of-two block of
    /// adjacent rows is exactly one subtree of the tournament, so shard
    /// responses recombine with the remaining high bits (the hierarchical
    /// decomposition of Fig. 7c across machines instead of cache levels).
    ///
    /// The shard *shares* its row pages with the parent (`Arc` clones, no
    /// copying); later writes to either side copy-on-write their own
    /// pages, so parent and shard stay independent.
    ///
    /// # Errors
    /// Returns [`PirError::InvalidParams`] when the range exceeds the
    /// database (caller-supplied shard geometry must never panic a
    /// server).
    pub fn shard_rows(&self, row_start: usize, rows: usize) -> Result<Database, PirError> {
        let end = row_start
            .checked_add(rows)
            .ok_or_else(|| shard_range_error(row_start, rows, self.num_rows()))?;
        if end > self.pages.len() {
            return Err(shard_range_error(row_start, rows, self.num_rows()));
        }
        Ok(Database {
            ctx: Arc::clone(&self.ctx),
            pages: self.pages[row_start..end].iter().map(Arc::clone).collect(),
            d0: self.d0,
            rec_words: self.rec_words,
            epoch: self.epoch,
            cow_pages: 0,
            cow_words: 0,
        })
    }

    /// Number of committed update batches this database has absorbed
    /// (0 for a fresh load; shard extracts inherit the parent's epoch).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies one committed batch of prepared deltas and bumps the
    /// epoch, returning the new epoch. Deltas apply in order, so a later
    /// delta to the same record wins. Every delta is validated *before*
    /// anything is written: a bad batch leaves the database untouched (no
    /// partial epoch). An empty batch is a no-op and does not bump the
    /// epoch.
    ///
    /// Only the row pages the batch touches are written; a touched page
    /// whose storage is shared with an older snapshot is duplicated first
    /// (`Arc::make_mut`) and counted in [`Database::cow_stats`]. Commit
    /// cost is therefore O(deltas), independent of the database size.
    ///
    /// The written words are exactly what [`Database::from_records`]
    /// would have produced for the same contents, so the mutated
    /// database — and every answer computed from it — is bit-identical
    /// to a cold rebuild.
    ///
    /// # Errors
    /// Returns [`PirError::IndexOutOfRange`] for a delta beyond the
    /// record count and [`PirError::InvalidParams`] when the prepared
    /// words do not match this ring's `k·n` shape.
    pub fn apply_updates(&mut self, updates: &[PreparedUpdate]) -> Result<u64, PirError> {
        if updates.is_empty() {
            return Ok(self.epoch);
        }
        for u in updates {
            if u.index() >= self.len() {
                return Err(PirError::IndexOutOfRange { index: u.index(), records: self.len() });
            }
            if u.words().len() != self.rec_words {
                return Err(PirError::InvalidParams(format!(
                    "prepared update carries {} words, record slots hold {}",
                    u.words().len(),
                    self.rec_words
                )));
            }
        }
        for u in updates {
            let page = &mut self.pages[u.index() / self.d0];
            if Arc::strong_count(page) > 1 {
                self.cow_pages += 1;
                self.cow_words += page.len() as u64;
            }
            let start = (u.index() % self.d0) * self.rec_words;
            Arc::make_mut(page)[start..start + self.rec_words].copy_from_slice(u.words());
        }
        self.epoch += 1;
        Ok(self.epoch)
    }
}

/// The error for an out-of-range row shard request.
fn shard_range_error(row_start: usize, rows: usize, have: usize) -> PirError {
    PirError::InvalidParams(format!(
        "row shard [{row_start}, {row_start}+{rows}) exceeds the {have} database rows"
    ))
}

/// Packs one byte record into a raw (un-scaled) plaintext polynomial.
pub(crate) fn pack_record(he: &HeParams, record: &[u8]) -> Result<RnsPoly, PirError> {
    Ok(plaintext_from_bytes(he, record)?.to_ntt_poly(he))
}

/// Packs bytes into plaintext coefficients, `log P / 8` bytes per
/// coefficient, little-endian.
pub fn plaintext_from_bytes(he: &HeParams, bytes: &[u8]) -> Result<Plaintext, PirError> {
    let chunk = he.p_bits() as usize / 8;
    if chunk == 0 || !he.p_bits().is_multiple_of(8) {
        return Err(PirError::InvalidParams(format!(
            "plaintext modulus 2^{} is not byte-aligned",
            he.p_bits()
        )));
    }
    let capacity = he.n() * chunk;
    if bytes.len() > capacity {
        return Err(PirError::RecordTooLarge { index: 0, len: bytes.len(), capacity });
    }
    let mut vals = vec![0u64; he.n()];
    for (i, b) in bytes.iter().enumerate() {
        vals[i / chunk] |= (*b as u64) << (8 * (i % chunk));
    }
    Ok(Plaintext::new(he, vals).expect("chunks below P by construction"))
}

/// Inverse of [`plaintext_from_bytes`]: recovers the byte payload of a
/// decoded plaintext.
pub fn plaintext_to_bytes(he: &HeParams, pt: &Plaintext) -> Vec<u8> {
    let chunk = he.p_bits() as usize / 8;
    let mut out = Vec::with_capacity(he.n() * chunk);
    for &v in pt.values() {
        for j in 0..chunk {
            out.push(((v >> (8 * j)) & 0xFF) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pack_unpack_roundtrip() {
        let params = PirParams::toy();
        let he = params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for len in [0usize, 1, 17, params.record_bytes()] {
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let pt = plaintext_from_bytes(he, &bytes).unwrap();
            let back = plaintext_to_bytes(he, &pt);
            assert_eq!(&back[..len], &bytes[..]);
            assert!(back[len..].iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn database_pads_missing_records() {
        let params = PirParams::toy();
        let db = Database::from_records(&params, &[b"only one".to_vec()]).unwrap();
        assert_eq!(db.len(), params.num_records());
        assert!(!db.is_empty());
    }

    #[test]
    fn oversized_record_rejected() {
        let params = PirParams::toy();
        let too_big = vec![0u8; params.record_bytes() + 1];
        assert!(matches!(
            Database::from_records(&params, &[too_big]),
            Err(PirError::RecordTooLarge { index: 0, .. })
        ));
    }

    #[test]
    fn too_many_records_rejected() {
        let params = PirParams::toy();
        let records = vec![vec![1u8]; params.num_records() + 1];
        assert!(matches!(
            Database::from_records(&params, &records),
            Err(PirError::TooManyRecords { .. })
        ));
    }

    #[test]
    fn matrix_view_indexing() {
        let params = PirParams::toy();
        let records: Vec<Vec<u8>> = (0..params.num_records()).map(|i| vec![i as u8; 4]).collect();
        let db = Database::from_records(&params, &records).unwrap();
        for i in 0..params.num_records() {
            let (r, c) = params.split_index(i);
            assert_eq!(db.poly(r, c), db.poly_flat(i));
            assert_eq!(db.poly_words(r, c), db.poly_words_flat(i));
        }
    }

    #[test]
    fn pages_are_limb_major_and_row_contiguous() {
        let params = PirParams::toy();
        let records: Vec<Vec<u8>> =
            (0..params.num_records()).map(|i| format!("rec {i}").into_bytes()).collect();
        let db = Database::from_records(&params, &records).unwrap();
        let he = params.he();
        let rec_words = he.ring().basis().len() * he.n();
        assert_eq!(db.record_words(), rec_words);
        assert_eq!(db.page_words(), params.d0() * rec_words);
        assert_eq!(db.to_words().len(), params.num_records() * rec_words);
        // Each record's slice is exactly its preprocessed polynomial's
        // residue-major storage; records of one row are packed back to
        // back inside the row page.
        for (i, rec) in records.iter().enumerate() {
            let expect = pack_record(he, rec).unwrap();
            assert_eq!(db.poly_words_flat(i), expect.as_words(), "record {i}");
        }
        for r in 0..db.num_rows() {
            for c in 0..db.d0() - 1 {
                let a = db.poly_words(r, c).as_ptr();
                let b = db.poly_words(r, c + 1).as_ptr();
                assert_eq!(unsafe { a.add(rec_words) }, b, "row {r} not contiguous at col {c}");
            }
        }
    }

    #[test]
    fn shard_rows_shares_pages_with_parent() {
        let params = PirParams::toy();
        let records: Vec<Vec<u8>> = (0..params.num_records()).map(|i| vec![i as u8; 2]).collect();
        let db = Database::from_records(&params, &records).unwrap();
        let shard = db.shard_rows(2, 3).unwrap();
        assert_eq!(shard.num_rows(), 3);
        assert_eq!(shard.d0(), db.d0());
        for r in 0..3 {
            for c in 0..db.d0() {
                assert_eq!(shard.poly_words(r, c), db.poly_words(r + 2, c));
            }
            // Zero-copy: the shard's page *is* the parent's page.
            assert_eq!(shard.poly_words(r, 0).as_ptr(), db.poly_words(r + 2, 0).as_ptr());
        }
    }

    #[test]
    fn writes_to_a_shard_do_not_leak_into_the_parent() {
        let params = PirParams::toy();
        let records: Vec<Vec<u8>> = (0..params.num_records()).map(|i| vec![i as u8; 2]).collect();
        let db = Database::from_records(&params, &records).unwrap();
        let mut shard = db.shard_rows(0, 2).unwrap();
        let before = db.to_words();
        let delta = crate::update::PreparedUpdate::prepare(
            &params,
            &crate::update::RecordUpdate::put(0, b"shard-local".to_vec()),
            crate::BackendKind::default(),
        )
        .unwrap();
        shard.apply_updates(&[delta]).unwrap();
        assert_eq!(db.to_words(), before, "parent must be isolated from shard writes");
        assert_eq!(shard.cow_stats().pages_copied, 1, "shared page must be duplicated");
        assert_ne!(shard.poly_words(0, 0), db.poly_words(0, 0));
    }

    #[test]
    fn apply_updates_matches_cold_rebuild() {
        let params = PirParams::toy();
        let mut records: Vec<Vec<u8>> =
            (0..params.num_records()).map(|i| format!("v0 rec {i}").into_bytes()).collect();
        let mut db = Database::from_records(&params, &records).unwrap();
        let log = crate::update::UpdateLog::new(&params);
        log.stage(crate::update::RecordUpdate::put(7, b"fresh".to_vec())).unwrap();
        log.stage(crate::update::RecordUpdate::delete(13)).unwrap();
        log.stage(crate::update::RecordUpdate::put(63, b"tail".to_vec())).unwrap();
        assert_eq!(db.apply_updates(&log.drain()).unwrap(), 1);
        assert_eq!(db.epoch(), 1);
        records[7] = b"fresh".to_vec();
        records[13] = Vec::new();
        records[63] = b"tail".to_vec();
        let rebuilt = Database::from_records(&params, &records).unwrap();
        assert_eq!(db.to_words(), rebuilt.to_words(), "update diverged from rebuild");
    }

    #[test]
    fn commit_copies_only_touched_pages() {
        let params = PirParams::toy();
        let records: Vec<Vec<u8>> =
            (0..params.num_records()).map(|i| format!("cow {i}").into_bytes()).collect();
        let snapshot = Database::from_records(&params, &records).unwrap();
        let mut next = snapshot.clone();
        assert_eq!(next.shared_pages(), next.num_rows(), "clone must share every page");
        let delta = crate::update::PreparedUpdate::prepare(
            &params,
            &crate::update::RecordUpdate::put(3, b"touched".to_vec()),
            crate::BackendKind::default(),
        )
        .unwrap();
        next.apply_updates(&[delta]).unwrap();
        let stats = next.cow_stats();
        assert_eq!(stats.pages_copied, 1, "one delta must duplicate exactly one page");
        assert_eq!(stats.words_copied, next.page_words() as u64);
        // Every untouched row still aliases the snapshot's storage.
        let touched_row = 3 / params.d0();
        for r in 0..next.num_rows() {
            let same = next.poly_words(r, 0).as_ptr() == snapshot.poly_words(r, 0).as_ptr();
            assert_eq!(same, r != touched_row, "row {r} sharing is wrong");
        }
    }

    #[test]
    fn trailing_zero_rows_share_one_page() {
        let params = PirParams::toy();
        let db = Database::from_records(&params, &[b"head".to_vec()]).unwrap();
        // Rows past the first are all-zero and alias one physical page.
        let tail = db.poly_words(1, 0).as_ptr();
        for r in 2..db.num_rows() {
            assert_eq!(db.poly_words(r, 0).as_ptr(), tail, "zero row {r} not shared");
        }
        assert_ne!(db.poly_words(0, 0).as_ptr(), tail);
    }

    #[test]
    fn empty_update_batch_is_a_noop() {
        let params = PirParams::toy();
        let mut db = Database::from_records(&params, &[b"x".to_vec()]).unwrap();
        let before = db.to_words();
        assert_eq!(db.apply_updates(&[]).unwrap(), 0);
        assert_eq!(db.epoch(), 0, "empty batch must not open an epoch");
        assert_eq!(db.to_words(), before);
    }

    #[test]
    fn out_of_range_update_is_an_error_not_a_panic() {
        let params = PirParams::toy();
        let mut db = Database::from_records(&params, &[]).unwrap();
        let before = db.to_words();
        let good = crate::update::PreparedUpdate::prepare(
            &params,
            &crate::update::RecordUpdate::put(0, b"ok".to_vec()),
            crate::BackendKind::default(),
        )
        .unwrap();
        // Shard extracts shrink the valid range: an index fine for the
        // full database must fail against a smaller shard, atomically
        // (the good delta in the same batch must not land either).
        let mut shard = db.shard_rows(0, 1).unwrap();
        let high = crate::update::PreparedUpdate::prepare(
            &params,
            &crate::update::RecordUpdate::delete(params.num_records() - 1),
            crate::BackendKind::default(),
        )
        .unwrap();
        match shard.apply_updates(&[good.clone(), high]) {
            Err(PirError::IndexOutOfRange { .. }) => {}
            other => panic!("expected IndexOutOfRange, got {other:?}"),
        }
        assert_eq!(shard.epoch(), 0);
        db.apply_updates(&[good]).unwrap();
        assert_ne!(db.to_words(), before);
    }

    #[test]
    fn shard_inherits_epoch() {
        let params = PirParams::toy();
        let mut db = Database::from_records(&params, &[]).unwrap();
        let log = crate::update::UpdateLog::new(&params);
        log.stage(crate::update::RecordUpdate::put(0, b"a".to_vec())).unwrap();
        db.apply_updates(&log.drain()).unwrap();
        assert_eq!(db.shard_rows(0, db.num_rows()).unwrap().epoch(), 1);
    }

    #[test]
    fn out_of_range_shard_is_an_error_not_a_panic() {
        let params = PirParams::toy();
        let db = Database::from_records(&params, &[]).unwrap();
        let rows = db.num_rows();
        for (start, count) in [(0, rows + 1), (rows, 1), (1, rows), (usize::MAX / 2, 2)] {
            match db.shard_rows(start, count) {
                Err(PirError::InvalidParams(msg)) => {
                    assert!(msg.contains("row shard"), "unexpected message: {msg}")
                }
                other => panic!("shard ({start}, {count}) must fail, got {other:?}"),
            }
        }
        // The full range still works.
        assert_eq!(db.shard_rows(0, rows).unwrap().len(), db.len());
    }
}
