//! Database packing and preprocessing (§II-B).
//!
//! Every record is reinterpreted as `N` chunks of `log P` bits and packed
//! into one plaintext polynomial of `R_P` (Fig. 1-③). Preprocessing then
//! lifts each polynomial into `R_Q` with CRT and NTT applied *offline*, so
//! that `RowSel` becomes pure pointwise multiply-accumulate — the paper
//! measures this preprocessing to speed PIR by more than 3.9× on CPU.
//!
//! The preprocessed records live in **one contiguous limb-major flat
//! buffer** per database (`rows × D0 × k × n` words): record `(r, i)`
//! occupies `k·n` consecutive words, its limb rows adjacent, so the
//! `RowSel` scan walks the whole database as a single forward stream —
//! the memory-bandwidth-bound access pattern IVE's PEs are built around
//! (§IV-B) — instead of chasing one heap allocation per polynomial.
//!
//! ```text
//! flat: | rec(0,0): limb0[n] limb1[n] … | rec(0,1): … | … | rec(r,D0-1): … |
//!         └── k·n words, NTT form ──┘
//! ```

use std::sync::Arc;

use rand::Rng;

use ive_he::{HeParams, Plaintext};
use ive_math::rns::{Form, RingContext, RnsPoly};

use crate::params::PirParams;
use crate::update::PreparedUpdate;
use crate::PirError;

/// A preprocessed PIR database: one NTT-form `R_Q` polynomial per record,
/// stored row-major over the `(D/D0) × D0` matrix view of Fig. 5 inside
/// one contiguous limb-major buffer.
///
/// The buffer is *mutable under version control*: committed
/// [`PreparedUpdate`] batches splice new record words in place and bump
/// the [`Database::epoch`], so a long-running server ingests content
/// changes without a rebuild (see [`crate::update`]).
#[derive(Debug, Clone)]
pub struct Database {
    ctx: Arc<RingContext>,
    /// `rows × d0 × k × n` words of NTT-form limb data.
    flat: Vec<u64>,
    d0: usize,
    /// Words per record (`k · n`).
    rec_words: usize,
    /// Number of committed update batches absorbed since load.
    epoch: u64,
}

impl Database {
    /// Packs and preprocesses byte records.
    ///
    /// Records shorter than [`PirParams::record_bytes`] are zero-padded;
    /// missing trailing records are all-zero. Supplying more records than
    /// `D`, or a record that exceeds the capacity, is an error.
    ///
    /// # Errors
    /// Returns [`PirError::RecordTooLarge`] / [`PirError::TooManyRecords`].
    pub fn from_records(params: &PirParams, records: &[Vec<u8>]) -> Result<Self, PirError> {
        if records.len() > params.num_records() {
            return Err(PirError::TooManyRecords {
                got: records.len(),
                capacity: params.num_records(),
            });
        }
        let capacity = params.record_bytes();
        let he = params.he();
        let ctx = Arc::clone(he.ring());
        let rec_words = ctx.basis().len() * ctx.n();
        let mut flat = Vec::with_capacity(params.num_records() * rec_words);
        for (i, rec) in records.iter().enumerate() {
            if rec.len() > capacity {
                return Err(PirError::RecordTooLarge { index: i, len: rec.len(), capacity });
            }
            flat.extend_from_slice(pack_record(he, rec)?.as_words());
        }
        // Missing trailing records are all-zero, and NTT(0) = 0.
        flat.resize(params.num_records() * rec_words, 0);
        Ok(Database { ctx, flat, d0: params.d0(), rec_words, epoch: 0 })
    }

    /// A uniformly random database (benchmarks and property tests).
    pub fn random<R: Rng + ?Sized>(params: &PirParams, rng: &mut R) -> Self {
        let he = params.he();
        let ctx = Arc::clone(he.ring());
        let rec_words = ctx.basis().len() * ctx.n();
        let mut flat = Vec::with_capacity(params.num_records() * rec_words);
        for _ in 0..params.num_records() {
            let vals: Vec<u64> = (0..he.n()).map(|_| rng.gen_range(0..he.p())).collect();
            let poly = Plaintext::new(he, vals).expect("sampled below P").to_ntt_poly(he);
            flat.extend_from_slice(poly.as_words());
        }
        Database { ctx, flat, d0: params.d0(), rec_words, epoch: 0 }
    }

    /// Number of record polynomials.
    #[inline]
    pub fn len(&self) -> usize {
        self.flat.len() / self.rec_words
    }

    /// Whether the database holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// The flat limb words (`k · n`, residue-major, NTT form) of record
    /// `(row, col)` — what the `RowSel` kernel scan consumes.
    #[inline]
    pub fn poly_words(&self, row: usize, col: usize) -> &[u64] {
        let start = (row * self.d0 + col) * self.rec_words;
        &self.flat[start..start + self.rec_words]
    }

    /// The flat limb words of flat record `index`.
    #[inline]
    pub fn poly_words_flat(&self, index: usize) -> &[u64] {
        &self.flat[index * self.rec_words..(index + 1) * self.rec_words]
    }

    /// The whole contiguous buffer (`rows × D0 × k × n` words).
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.flat
    }

    /// Words per record polynomial (`k · n`).
    #[inline]
    pub fn record_words(&self) -> usize {
        self.rec_words
    }

    /// The ring the records are preprocessed into.
    #[inline]
    pub fn ring(&self) -> &Arc<RingContext> {
        &self.ctx
    }

    /// Materializes the preprocessed polynomial of record `(row, col)` —
    /// a copy; cold paths and tests only, the scan uses
    /// [`Database::poly_words`].
    pub fn poly(&self, row: usize, col: usize) -> RnsPoly {
        RnsPoly::from_words(&self.ctx, Form::Ntt, self.poly_words(row, col).to_vec())
            .expect("record slice has ring shape")
    }

    /// Materializes the preprocessed polynomial of flat record `index`.
    pub fn poly_flat(&self, index: usize) -> RnsPoly {
        RnsPoly::from_words(&self.ctx, Form::Ntt, self.poly_words_flat(index).to_vec())
            .expect("record slice has ring shape")
    }

    /// First-dimension width `D0`.
    #[inline]
    pub fn d0(&self) -> usize {
        self.d0
    }

    /// Number of rows (`D / D0`) in the matrix view.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.len() / self.d0
    }

    /// Extracts the contiguous row range `[row_start, row_start + rows)`
    /// as a standalone database — the row-sharding hook. Because `ColTor`
    /// consumes row-index bits LSB first, an aligned power-of-two block of
    /// adjacent rows is exactly one subtree of the tournament, so shard
    /// responses recombine with the remaining high bits (the hierarchical
    /// decomposition of Fig. 7c across machines instead of cache levels).
    ///
    /// # Errors
    /// Returns [`PirError::InvalidParams`] when the range exceeds the
    /// database (caller-supplied shard geometry must never panic a
    /// server).
    pub fn shard_rows(&self, row_start: usize, rows: usize) -> Result<Database, PirError> {
        let start = row_start
            .checked_mul(self.d0)
            .and_then(|r| r.checked_mul(self.rec_words))
            .ok_or_else(|| shard_range_error(row_start, rows, self.num_rows()))?;
        let end = row_start
            .checked_add(rows)
            .and_then(|r| r.checked_mul(self.d0 * self.rec_words))
            .ok_or_else(|| shard_range_error(row_start, rows, self.num_rows()))?;
        if end > self.flat.len() {
            return Err(shard_range_error(row_start, rows, self.num_rows()));
        }
        Ok(Database {
            ctx: Arc::clone(&self.ctx),
            flat: self.flat[start..end].to_vec(),
            d0: self.d0,
            rec_words: self.rec_words,
            epoch: self.epoch,
        })
    }

    /// Number of committed update batches this database has absorbed
    /// (0 for a fresh load; shard extracts inherit the parent's epoch).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies one committed batch of prepared deltas to the flat buffer
    /// and bumps the epoch, returning the new epoch. Deltas apply in
    /// order, so a later delta to the same record wins. Every delta is
    /// validated *before* anything is written: a bad batch leaves the
    /// database untouched (no partial epoch). An empty batch is a no-op
    /// and does not bump the epoch.
    ///
    /// The written words are exactly what [`Database::from_records`]
    /// would have produced for the same contents, so the mutated
    /// database — and every answer computed from it — is bit-identical
    /// to a cold rebuild.
    ///
    /// # Errors
    /// Returns [`PirError::IndexOutOfRange`] for a delta beyond the
    /// record count and [`PirError::InvalidParams`] when the prepared
    /// words do not match this ring's `k·n` shape.
    pub fn apply_updates(&mut self, updates: &[PreparedUpdate]) -> Result<u64, PirError> {
        if updates.is_empty() {
            return Ok(self.epoch);
        }
        for u in updates {
            if u.index() >= self.len() {
                return Err(PirError::IndexOutOfRange { index: u.index(), records: self.len() });
            }
            if u.words().len() != self.rec_words {
                return Err(PirError::InvalidParams(format!(
                    "prepared update carries {} words, record slots hold {}",
                    u.words().len(),
                    self.rec_words
                )));
            }
        }
        for u in updates {
            let start = u.index() * self.rec_words;
            self.flat[start..start + self.rec_words].copy_from_slice(u.words());
        }
        self.epoch += 1;
        Ok(self.epoch)
    }
}

/// The error for an out-of-range row shard request.
fn shard_range_error(row_start: usize, rows: usize, have: usize) -> PirError {
    PirError::InvalidParams(format!(
        "row shard [{row_start}, {row_start}+{rows}) exceeds the {have} database rows"
    ))
}

/// Packs one byte record into a raw (un-scaled) plaintext polynomial.
pub(crate) fn pack_record(he: &HeParams, record: &[u8]) -> Result<RnsPoly, PirError> {
    Ok(plaintext_from_bytes(he, record)?.to_ntt_poly(he))
}

/// Packs bytes into plaintext coefficients, `log P / 8` bytes per
/// coefficient, little-endian.
pub fn plaintext_from_bytes(he: &HeParams, bytes: &[u8]) -> Result<Plaintext, PirError> {
    let chunk = he.p_bits() as usize / 8;
    if chunk == 0 || he.p_bits() % 8 != 0 {
        return Err(PirError::InvalidParams(format!(
            "plaintext modulus 2^{} is not byte-aligned",
            he.p_bits()
        )));
    }
    let capacity = he.n() * chunk;
    if bytes.len() > capacity {
        return Err(PirError::RecordTooLarge { index: 0, len: bytes.len(), capacity });
    }
    let mut vals = vec![0u64; he.n()];
    for (i, b) in bytes.iter().enumerate() {
        vals[i / chunk] |= (*b as u64) << (8 * (i % chunk));
    }
    Ok(Plaintext::new(he, vals).expect("chunks below P by construction"))
}

/// Inverse of [`plaintext_from_bytes`]: recovers the byte payload of a
/// decoded plaintext.
pub fn plaintext_to_bytes(he: &HeParams, pt: &Plaintext) -> Vec<u8> {
    let chunk = he.p_bits() as usize / 8;
    let mut out = Vec::with_capacity(he.n() * chunk);
    for &v in pt.values() {
        for j in 0..chunk {
            out.push(((v >> (8 * j)) & 0xFF) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pack_unpack_roundtrip() {
        let params = PirParams::toy();
        let he = params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for len in [0usize, 1, 17, params.record_bytes()] {
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let pt = plaintext_from_bytes(he, &bytes).unwrap();
            let back = plaintext_to_bytes(he, &pt);
            assert_eq!(&back[..len], &bytes[..]);
            assert!(back[len..].iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn database_pads_missing_records() {
        let params = PirParams::toy();
        let db = Database::from_records(&params, &[b"only one".to_vec()]).unwrap();
        assert_eq!(db.len(), params.num_records());
        assert!(!db.is_empty());
    }

    #[test]
    fn oversized_record_rejected() {
        let params = PirParams::toy();
        let too_big = vec![0u8; params.record_bytes() + 1];
        assert!(matches!(
            Database::from_records(&params, &[too_big]),
            Err(PirError::RecordTooLarge { index: 0, .. })
        ));
    }

    #[test]
    fn too_many_records_rejected() {
        let params = PirParams::toy();
        let records = vec![vec![1u8]; params.num_records() + 1];
        assert!(matches!(
            Database::from_records(&params, &records),
            Err(PirError::TooManyRecords { .. })
        ));
    }

    #[test]
    fn matrix_view_indexing() {
        let params = PirParams::toy();
        let records: Vec<Vec<u8>> = (0..params.num_records()).map(|i| vec![i as u8; 4]).collect();
        let db = Database::from_records(&params, &records).unwrap();
        for i in 0..params.num_records() {
            let (r, c) = params.split_index(i);
            assert_eq!(db.poly(r, c), db.poly_flat(i));
            assert_eq!(db.poly_words(r, c), db.poly_words_flat(i));
        }
    }

    #[test]
    fn flat_buffer_is_limb_major_and_contiguous() {
        let params = PirParams::toy();
        let records: Vec<Vec<u8>> =
            (0..params.num_records()).map(|i| format!("rec {i}").into_bytes()).collect();
        let db = Database::from_records(&params, &records).unwrap();
        let he = params.he();
        let rec_words = he.ring().basis().len() * he.n();
        assert_eq!(db.record_words(), rec_words);
        assert_eq!(db.as_words().len(), params.num_records() * rec_words);
        // Each record's slice is exactly its preprocessed polynomial's
        // residue-major storage, packed back to back.
        for (i, rec) in records.iter().enumerate() {
            let expect = pack_record(he, rec).unwrap();
            assert_eq!(db.poly_words_flat(i), expect.as_words(), "record {i}");
        }
    }

    #[test]
    fn shard_rows_slices_the_flat_buffer() {
        let params = PirParams::toy();
        let records: Vec<Vec<u8>> = (0..params.num_records()).map(|i| vec![i as u8; 2]).collect();
        let db = Database::from_records(&params, &records).unwrap();
        let shard = db.shard_rows(2, 3).unwrap();
        assert_eq!(shard.num_rows(), 3);
        assert_eq!(shard.d0(), db.d0());
        for r in 0..3 {
            for c in 0..db.d0() {
                assert_eq!(shard.poly_words(r, c), db.poly_words(r + 2, c));
            }
        }
    }

    #[test]
    fn apply_updates_matches_cold_rebuild() {
        let params = PirParams::toy();
        let mut records: Vec<Vec<u8>> =
            (0..params.num_records()).map(|i| format!("v0 rec {i}").into_bytes()).collect();
        let mut db = Database::from_records(&params, &records).unwrap();
        let log = crate::update::UpdateLog::new(&params);
        log.stage(crate::update::RecordUpdate::put(7, b"fresh".to_vec())).unwrap();
        log.stage(crate::update::RecordUpdate::delete(13)).unwrap();
        log.stage(crate::update::RecordUpdate::put(63, b"tail".to_vec())).unwrap();
        assert_eq!(db.apply_updates(&log.drain()).unwrap(), 1);
        assert_eq!(db.epoch(), 1);
        records[7] = b"fresh".to_vec();
        records[13] = Vec::new();
        records[63] = b"tail".to_vec();
        let rebuilt = Database::from_records(&params, &records).unwrap();
        assert_eq!(db.as_words(), rebuilt.as_words(), "update diverged from rebuild");
    }

    #[test]
    fn empty_update_batch_is_a_noop() {
        let params = PirParams::toy();
        let mut db = Database::from_records(&params, &[b"x".to_vec()]).unwrap();
        let before = db.as_words().to_vec();
        assert_eq!(db.apply_updates(&[]).unwrap(), 0);
        assert_eq!(db.epoch(), 0, "empty batch must not open an epoch");
        assert_eq!(db.as_words(), &before[..]);
    }

    #[test]
    fn out_of_range_update_is_an_error_not_a_panic() {
        let params = PirParams::toy();
        let mut db = Database::from_records(&params, &[]).unwrap();
        let before = db.as_words().to_vec();
        let good = crate::update::PreparedUpdate::prepare(
            &params,
            &crate::update::RecordUpdate::put(0, b"ok".to_vec()),
            crate::BackendKind::default(),
        )
        .unwrap();
        // Shard extracts shrink the valid range: an index fine for the
        // full database must fail against a smaller shard, atomically
        // (the good delta in the same batch must not land either).
        let mut shard = db.shard_rows(0, 1).unwrap();
        let high = crate::update::PreparedUpdate::prepare(
            &params,
            &crate::update::RecordUpdate::delete(params.num_records() - 1),
            crate::BackendKind::default(),
        )
        .unwrap();
        match shard.apply_updates(&[good.clone(), high]) {
            Err(PirError::IndexOutOfRange { .. }) => {}
            other => panic!("expected IndexOutOfRange, got {other:?}"),
        }
        assert_eq!(shard.epoch(), 0);
        db.apply_updates(&[good]).unwrap();
        assert_ne!(db.as_words(), &before[..]);
    }

    #[test]
    fn shard_inherits_epoch() {
        let params = PirParams::toy();
        let mut db = Database::from_records(&params, &[]).unwrap();
        let log = crate::update::UpdateLog::new(&params);
        log.stage(crate::update::RecordUpdate::put(0, b"a".to_vec())).unwrap();
        db.apply_updates(&log.drain()).unwrap();
        assert_eq!(db.shard_rows(0, db.num_rows()).unwrap().epoch(), 1);
    }

    #[test]
    fn out_of_range_shard_is_an_error_not_a_panic() {
        let params = PirParams::toy();
        let db = Database::from_records(&params, &[]).unwrap();
        let rows = db.num_rows();
        for (start, count) in [(0, rows + 1), (rows, 1), (1, rows), (usize::MAX / 2, 2)] {
            match db.shard_rows(start, count) {
                Err(PirError::InvalidParams(msg)) => {
                    assert!(msg.contains("row shard"), "unexpected message: {msg}")
                }
                other => panic!("shard ({start}, {count}) must fail, got {other:?}"),
            }
        }
        // The full range still works.
        assert_eq!(db.shard_rows(0, rows).unwrap().len(), db.len());
    }
}
