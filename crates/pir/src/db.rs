//! Database packing and preprocessing (§II-B).
//!
//! Every record is reinterpreted as `N` chunks of `log P` bits and packed
//! into one plaintext polynomial of `R_P` (Fig. 1-③). Preprocessing then
//! lifts each polynomial into `R_Q` with CRT and NTT applied *offline*, so
//! that `RowSel` becomes pure pointwise multiply-accumulate — the paper
//! measures this preprocessing to speed PIR by more than 3.9× on CPU.

use rand::Rng;

use ive_he::{HeParams, Plaintext};
use ive_math::rns::RnsPoly;

use crate::params::PirParams;
use crate::PirError;

/// A preprocessed PIR database: one NTT-form `R_Q` polynomial per record,
/// stored row-major over the `(D/D0) × D0` matrix view of Fig. 5.
#[derive(Debug, Clone)]
pub struct Database {
    polys: Vec<RnsPoly>,
    d0: usize,
}

impl Database {
    /// Packs and preprocesses byte records.
    ///
    /// Records shorter than [`PirParams::record_bytes`] are zero-padded;
    /// missing trailing records are all-zero. Supplying more records than
    /// `D`, or a record that exceeds the capacity, is an error.
    ///
    /// # Errors
    /// Returns [`PirError::RecordTooLarge`] / [`PirError::TooManyRecords`].
    pub fn from_records(params: &PirParams, records: &[Vec<u8>]) -> Result<Self, PirError> {
        if records.len() > params.num_records() {
            return Err(PirError::TooManyRecords {
                got: records.len(),
                capacity: params.num_records(),
            });
        }
        let capacity = params.record_bytes();
        let he = params.he();
        let mut polys = Vec::with_capacity(params.num_records());
        for (i, rec) in records.iter().enumerate() {
            if rec.len() > capacity {
                return Err(PirError::RecordTooLarge { index: i, len: rec.len(), capacity });
            }
            polys.push(pack_record(he, rec)?);
        }
        while polys.len() < params.num_records() {
            polys.push(Plaintext::zero(he).to_ntt_poly(he));
        }
        Ok(Database { polys, d0: params.d0() })
    }

    /// A uniformly random database (benchmarks and property tests).
    pub fn random<R: Rng + ?Sized>(params: &PirParams, rng: &mut R) -> Self {
        let he = params.he();
        let polys = (0..params.num_records())
            .map(|_| {
                let vals: Vec<u64> = (0..he.n()).map(|_| rng.gen_range(0..he.p())).collect();
                Plaintext::new(he, vals).expect("sampled below P").to_ntt_poly(he)
            })
            .collect();
        Database { polys, d0: params.d0() }
    }

    /// Number of record polynomials.
    #[inline]
    pub fn len(&self) -> usize {
        self.polys.len()
    }

    /// Whether the database holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.polys.is_empty()
    }

    /// The preprocessed polynomial of record `(row, col)`.
    #[inline]
    pub fn poly(&self, row: usize, col: usize) -> &RnsPoly {
        &self.polys[row * self.d0 + col]
    }

    /// The preprocessed polynomial of flat record `index`.
    #[inline]
    pub fn poly_flat(&self, index: usize) -> &RnsPoly {
        &self.polys[index]
    }

    /// First-dimension width `D0`.
    #[inline]
    pub fn d0(&self) -> usize {
        self.d0
    }

    /// Number of rows (`D / D0`) in the matrix view.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.polys.len() / self.d0
    }

    /// Extracts the contiguous row range `[row_start, row_start + rows)`
    /// as a standalone database — the row-sharding hook. Because `ColTor`
    /// consumes row-index bits LSB first, an aligned power-of-two block of
    /// adjacent rows is exactly one subtree of the tournament, so shard
    /// responses recombine with the remaining high bits (the hierarchical
    /// decomposition of Fig. 7c across machines instead of cache levels).
    ///
    /// # Panics
    /// Panics if the range exceeds the database.
    pub fn shard_rows(&self, row_start: usize, rows: usize) -> Database {
        let start = row_start * self.d0;
        let end = (row_start + rows) * self.d0;
        assert!(end <= self.polys.len(), "row shard {row_start}+{rows} out of range");
        Database { polys: self.polys[start..end].to_vec(), d0: self.d0 }
    }
}

/// Packs one byte record into a raw (un-scaled) plaintext polynomial.
pub(crate) fn pack_record(he: &HeParams, record: &[u8]) -> Result<RnsPoly, PirError> {
    Ok(plaintext_from_bytes(he, record)?.to_ntt_poly(he))
}

/// Packs bytes into plaintext coefficients, `log P / 8` bytes per
/// coefficient, little-endian.
pub fn plaintext_from_bytes(he: &HeParams, bytes: &[u8]) -> Result<Plaintext, PirError> {
    let chunk = he.p_bits() as usize / 8;
    if chunk == 0 || he.p_bits() % 8 != 0 {
        return Err(PirError::InvalidParams(format!(
            "plaintext modulus 2^{} is not byte-aligned",
            he.p_bits()
        )));
    }
    let capacity = he.n() * chunk;
    if bytes.len() > capacity {
        return Err(PirError::RecordTooLarge { index: 0, len: bytes.len(), capacity });
    }
    let mut vals = vec![0u64; he.n()];
    for (i, b) in bytes.iter().enumerate() {
        vals[i / chunk] |= (*b as u64) << (8 * (i % chunk));
    }
    Ok(Plaintext::new(he, vals).expect("chunks below P by construction"))
}

/// Inverse of [`plaintext_from_bytes`]: recovers the byte payload of a
/// decoded plaintext.
pub fn plaintext_to_bytes(he: &HeParams, pt: &Plaintext) -> Vec<u8> {
    let chunk = he.p_bits() as usize / 8;
    let mut out = Vec::with_capacity(he.n() * chunk);
    for &v in pt.values() {
        for j in 0..chunk {
            out.push(((v >> (8 * j)) & 0xFF) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pack_unpack_roundtrip() {
        let params = PirParams::toy();
        let he = params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for len in [0usize, 1, 17, params.record_bytes()] {
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let pt = plaintext_from_bytes(he, &bytes).unwrap();
            let back = plaintext_to_bytes(he, &pt);
            assert_eq!(&back[..len], &bytes[..]);
            assert!(back[len..].iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn database_pads_missing_records() {
        let params = PirParams::toy();
        let db = Database::from_records(&params, &[b"only one".to_vec()]).unwrap();
        assert_eq!(db.len(), params.num_records());
        assert!(!db.is_empty());
    }

    #[test]
    fn oversized_record_rejected() {
        let params = PirParams::toy();
        let too_big = vec![0u8; params.record_bytes() + 1];
        assert!(matches!(
            Database::from_records(&params, &[too_big]),
            Err(PirError::RecordTooLarge { index: 0, .. })
        ));
    }

    #[test]
    fn too_many_records_rejected() {
        let params = PirParams::toy();
        let records = vec![vec![1u8]; params.num_records() + 1];
        assert!(matches!(
            Database::from_records(&params, &records),
            Err(PirError::TooManyRecords { .. })
        ));
    }

    #[test]
    fn matrix_view_indexing() {
        let params = PirParams::toy();
        let records: Vec<Vec<u8>> = (0..params.num_records()).map(|i| vec![i as u8; 4]).collect();
        let db = Database::from_records(&params, &records).unwrap();
        for i in 0..params.num_records() {
            let (r, c) = params.split_index(i);
            assert_eq!(db.poly(r, c), db.poly_flat(i));
        }
    }
}
