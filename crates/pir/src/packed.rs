//! The fully packed query (§II-C): *all* selection data — the `D0`-ary
//! one-hot index and every RGSW gadget digit for the `d` binary
//! dimensions — travels in two BFV ciphertexts. The server expands both
//! trees with `Subs`, then assembles the RGSW selection bits with the
//! BFV→RGSW conversion key ([`ive_he::convert`]), so the per-query upload
//! is independent of `d` (two ciphertexts ≈ 224KB at Table I parameters,
//! versus one RGSW per dimension in the direct mode).
//!
//! This is the protocol variant the paper's performance model charges
//! `ExpandQuery` for ("minor additional computations", §II-C).

use rand::Rng;

use ive_he::convert::RgswConversionKey;
use ive_he::{BfvCiphertext, HeParams, Plaintext, RgswCiphertext, SecretKey, SubsKey};
use ive_math::rns::RnsPoly;
use ive_math::wide;

use crate::db::plaintext_to_bytes;
use crate::expand::{expand_query, expansion_exponents};
use crate::params::PirParams;
use crate::server::PirServer;
use crate::PirError;

/// A fully packed query: two ciphertexts.
#[derive(Debug, Clone)]
pub struct PackedQuery {
    /// Encrypts `Δ·2^{-L0}·X^{col}` (the first-dimension one-hot).
    onehot: BfvCiphertext,
    /// Encrypts the scale-1 digit payload `Σ_{t,j} b_t·z^j·2^{-L1}·X^{tℓ+j}`.
    digits: BfvCiphertext,
}

impl PackedQuery {
    /// Serialized size: exactly two ciphertexts, independent of `d`.
    pub fn byte_len(&self, he: &HeParams) -> usize {
        2 * he.ct_bytes()
    }
}

/// Client key material for the packed mode: expansion keys deep enough
/// for both trees, plus the conversion key.
#[derive(Debug, Clone)]
pub struct PackedClientKeys {
    expand: Vec<SubsKey>,
    conversion: RgswConversionKey,
}

impl PackedClientKeys {
    /// The expansion keys (shared by both trees).
    #[inline]
    pub fn subs_keys(&self) -> &[SubsKey] {
        &self.expand
    }

    /// The BFV→RGSW conversion key.
    #[inline]
    pub fn conversion_key(&self) -> &RgswConversionKey {
        &self.conversion
    }

    /// Total registered key bytes.
    pub fn byte_len(&self, he: &HeParams) -> usize {
        self.expand.len() * he.evk_bytes() + he.evk_bytes()
    }
}

/// Tree depth of the digit ciphertext: `2^L1 >= d·ℓ` slots.
fn digit_levels(params: &PirParams) -> u32 {
    let slots = (params.dims() as usize * params.he().gadget().ell()).max(1);
    (slots as f64).log2().ceil().max(1.0) as u32
}

/// A PIR client using the packed query mode.
#[derive(Debug)]
pub struct PackedPirClient<R: Rng> {
    params: PirParams,
    sk: SecretKey,
    keys: PackedClientKeys,
    rng: R,
}

impl<R: Rng> PackedPirClient<R> {
    /// Generates the secret, expansion and conversion keys.
    ///
    /// # Errors
    /// Fails when the digit payload does not fit the ring
    /// (`d·ℓ > N`).
    pub fn new(params: &PirParams, mut rng: R) -> Result<Self, PirError> {
        let he = params.he();
        let slots = params.dims() as usize * he.gadget().ell();
        if slots > he.n() {
            return Err(PirError::InvalidParams(format!(
                "digit payload of {slots} slots exceeds ring degree {}",
                he.n()
            )));
        }
        let sk = SecretKey::generate(he, &mut rng);
        let levels = params.log_d0().max(digit_levels(params));
        let expand = expansion_exponents(he.n(), levels)
            .into_iter()
            .map(|r| SubsKey::generate(he, &sk, r, &mut rng))
            .collect();
        let conversion = RgswConversionKey::generate(he, &sk, &mut rng);
        Ok(PackedPirClient {
            params: params.clone(),
            sk,
            keys: PackedClientKeys { expand, conversion },
            rng,
        })
    }

    /// The public key material to register with the server.
    #[inline]
    pub fn public_keys(&self) -> &PackedClientKeys {
        &self.keys
    }

    /// Builds the two-ciphertext query for `index`.
    ///
    /// # Errors
    /// Fails when `index` is out of range.
    pub fn query(&mut self, index: usize) -> Result<PackedQuery, PirError> {
        if index >= self.params.num_records() {
            return Err(PirError::IndexOutOfRange { index, records: self.params.num_records() });
        }
        let he = self.params.he();
        let q = he.q_big();
        let (row, col) = self.params.split_index(index);

        // Ciphertext 1: the one-hot, pre-scaled by Δ·2^{-log D0}.
        let inv0 = he.inv_two_pow(self.params.log_d0());
        let (hi, lo) = wide::mul_u128(he.delta(), inv0);
        let scale = wide::div_rem_wide(hi, lo, q).1;
        let m = Plaintext::monomial(he, col, 1)?;
        let onehot = BfvCiphertext::encrypt_scaled(he, &self.sk, &m, scale, &mut self.rng);

        // Ciphertext 2: gadget digits b_t·z^j at slot t·ℓ+j, pre-scaled
        // by 2^{-L1} so the expansion doubling cancels exactly.
        let ell = he.gadget().ell();
        let inv1 = he.inv_two_pow(digit_levels(&self.params));
        let powers = he.gadget().powers();
        let mut coeffs = vec![0u128; he.n()];
        for t in 0..self.params.dims() as usize {
            if (row >> t) & 1 == 1 {
                for (j, &zj) in powers.iter().take(ell).enumerate() {
                    let (hi, lo) = wide::mul_u128(zj % q, inv1);
                    coeffs[t * ell + j] = wide::div_rem_wide(hi, lo, q).1;
                }
            }
        }
        let mut msg = RnsPoly::from_coeffs_u128(he.ring(), &coeffs);
        msg.to_ntt();
        let digits = BfvCiphertext::encrypt_rns(he, &self.sk, &msg, &mut self.rng);

        Ok(PackedQuery { onehot, digits })
    }

    /// Decrypts a response into the padded record payload.
    ///
    /// # Errors
    /// Infallible today; fallible for API stability.
    pub fn decode(&self, response: &BfvCiphertext) -> Result<Vec<u8>, PirError> {
        let he = self.params.he();
        Ok(plaintext_to_bytes(he, &response.decrypt(he, &self.sk)))
    }
}

/// Server-side derivation of the RGSW selection bits from the digit
/// ciphertext (the "minor additional computations" of §II-C).
pub fn derive_row_bits(
    params: &PirParams,
    keys: &PackedClientKeys,
    digits_ct: &BfvCiphertext,
) -> Result<Vec<RgswCiphertext>, PirError> {
    let he = params.he();
    let ell = he.gadget().ell();
    let levels = digit_levels(params);
    let expanded = expand_query(he, digits_ct, keys.subs_keys(), levels)?;
    let mut bits = Vec::with_capacity(params.dims() as usize);
    for t in 0..params.dims() as usize {
        let digit_cts = &expanded[t * ell..(t + 1) * ell];
        bits.push(keys.conversion_key().convert(he, digit_cts)?);
    }
    Ok(bits)
}

/// Answers a packed query end to end on an existing server.
///
/// # Errors
/// Propagates expansion/conversion/pipeline failures.
pub fn answer_packed(
    server: &PirServer,
    keys: &PackedClientKeys,
    query: &PackedQuery,
) -> Result<BfvCiphertext, PirError> {
    let params = server.params();
    let he = params.he();
    // Step 1a: expand the one-hot tree.
    let expanded = expand_query(he, &query.onehot, keys.subs_keys(), params.log_d0())?;
    // Step 1b: expand the digit tree and convert to RGSW.
    let row_bits = derive_row_bits(params, keys, &query.digits)?;
    // Steps 2-3: the standard pipeline.
    let rows = server.row_sel(&expanded)?;
    crate::coltor::col_tor(
        he,
        rows,
        &row_bits,
        crate::coltor::TournamentOrder::Hs { subtree_depth: 2 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use ive_he::HeParams;
    use ive_math::gadget::Gadget;
    use ive_math::rns::RingContext;
    use rand::SeedableRng;

    /// Packed-mode parameters with a narrow gadget (z = 2^8) so the
    /// conversion noise stays comfortably inside the budget at toy scale.
    fn packed_params() -> PirParams {
        let ring = RingContext::test_ring(256, 3);
        let gadget = Gadget::for_modulus(ring.basis().q_big(), 8);
        let he = HeParams::new(ring, 16, gadget, 4).expect("valid parameters");
        PirParams::new(he, 8, 3).expect("valid geometry")
    }

    #[test]
    fn packed_retrieval_round_trip() {
        let params = packed_params();
        let records: Vec<Vec<u8>> = (0..params.num_records())
            .map(|i| format!("packed record {i:03}").into_bytes())
            .collect();
        let db = Database::from_records(&params, &records).expect("fits");
        let server = PirServer::new(&params, db).expect("geometry matches");
        let mut client =
            PackedPirClient::new(&params, rand::rngs::StdRng::seed_from_u64(808)).expect("keygen");
        for target in [0usize, 7, 33, params.num_records() - 1] {
            let query = client.query(target).expect("in range");
            let response = answer_packed(&server, client.public_keys(), &query).expect("pipeline");
            let plain = client.decode(&response).expect("decrypts");
            assert_eq!(&plain[..records[target].len()], &records[target][..], "record {target}");
        }
    }

    #[test]
    fn packed_query_is_two_ciphertexts() {
        let params = packed_params();
        let he = params.he();
        let mut client =
            PackedPirClient::new(&params, rand::rngs::StdRng::seed_from_u64(1)).expect("keygen");
        let q = client.query(3).expect("in range");
        assert_eq!(q.byte_len(he), 2 * he.ct_bytes());
        // Independent of d: the direct mode ships d RGSW ciphertexts.
        let direct_bytes = he.ct_bytes() + params.dims() as usize * he.rgsw_bytes();
        assert!(q.byte_len(he) < direct_bytes);
    }

    #[test]
    fn derived_bits_match_row_index() {
        // Expanding + converting, then using the bits in a plain CMux,
        // must select according to the row bits of the index.
        let params = packed_params();
        let he = params.he();
        let mut client =
            PackedPirClient::new(&params, rand::rngs::StdRng::seed_from_u64(2)).expect("keygen");
        let index = params.join_index(5, 2); // row 5 = 101b
        let query = client.query(index).expect("in range");
        let bits =
            derive_row_bits(&params, client.public_keys(), &query.digits).expect("conversion");
        assert_eq!(bits.len(), params.dims() as usize);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mx = ive_he::Plaintext::monomial(he, 0, 11).expect("valid");
        let my = ive_he::Plaintext::monomial(he, 0, 22).expect("valid");
        let x = ive_he::BfvCiphertext::encrypt(he, &client.sk, &mx, &mut rng);
        let y = ive_he::BfvCiphertext::encrypt(he, &client.sk, &my, &mut rng);
        for (t, expect_bit) in [(0usize, true), (1, false), (2, true)] {
            let out = bits[t].cmux(he, &x, &y).expect("compatible");
            let got = out.decrypt(he, &client.sk);
            let expect = if expect_bit { &mx } else { &my };
            assert_eq!(&got, expect, "bit {t}");
        }
    }

    #[test]
    fn oversized_digit_payload_rejected() {
        // d·ℓ beyond N must be refused at keygen.
        let ring = RingContext::test_ring(64, 2);
        let gadget = Gadget::for_modulus(ring.basis().q_big(), 4); // ℓ = 14
        let he = HeParams::new(ring, 16, gadget, 4).expect("valid parameters");
        let params = PirParams::new(he, 8, 5).expect("valid geometry"); // 5·14 = 70 > 64
        assert!(PackedPirClient::new(&params, rand::rngs::StdRng::seed_from_u64(4)).is_err());
    }
}
