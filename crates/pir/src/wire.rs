//! Wire serialization for queries, responses and client key material.
//!
//! The paper's communication accounting (§VI-C: "each query transfers
//! only a few MBs ... through PCIe") is measured here on actual encodings
//! rather than estimated: residues are packed at 4 bytes/word (the
//! special primes are 28-bit), with a small self-describing header.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use ive_he::{BfvCiphertext, HeParams, RgswCiphertext, SubsKey};
use ive_math::rns::{Form, RnsPoly};

use crate::client::PirQuery;
use crate::PirError;

/// Format magic (`"IVE1"`).
const MAGIC: u32 = 0x4956_4531;

/// Tags for the framed object types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Tag {
    Poly = 1,
    Bfv = 2,
    Rgsw = 3,
    Query = 4,
}

fn put_header(buf: &mut BytesMut, tag: Tag) {
    buf.put_u32(MAGIC);
    buf.put_u8(tag as u8);
}

fn check_header(buf: &mut impl Buf, tag: Tag) -> Result<(), PirError> {
    if buf.remaining() < 5 {
        return Err(PirError::Wire("truncated header".into()));
    }
    if buf.get_u32() != MAGIC {
        return Err(PirError::Wire("bad magic".into()));
    }
    let got = buf.get_u8();
    if got != tag as u8 {
        return Err(PirError::Wire(format!("expected tag {}, got {got}", tag as u8)));
    }
    Ok(())
}

/// Serializes one polynomial (form byte + residue words).
pub fn write_poly(buf: &mut BytesMut, poly: &RnsPoly) {
    put_header(buf, Tag::Poly);
    buf.put_u8(match poly.form() {
        Form::Coeff => 0,
        Form::Ntt => 1,
    });
    let k = poly.ctx().basis().len();
    let n = poly.ctx().n();
    buf.put_u16(k as u16);
    buf.put_u32(n as u32);
    for m in 0..k {
        for &w in poly.residue(m) {
            debug_assert!(w < u32::MAX as u64, "residue exceeds 4-byte packing");
            buf.put_u32(w as u32);
        }
    }
}

/// Deserializes one polynomial against the given parameters.
///
/// # Errors
/// Fails on truncation, bad framing, or shape/value mismatch.
pub fn read_poly(he: &HeParams, buf: &mut impl Buf) -> Result<RnsPoly, PirError> {
    check_header(buf, Tag::Poly)?;
    if buf.remaining() < 7 {
        return Err(PirError::Wire("truncated poly header".into()));
    }
    let form = match buf.get_u8() {
        0 => Form::Coeff,
        1 => Form::Ntt,
        other => return Err(PirError::Wire(format!("unknown form {other}"))),
    };
    let k = buf.get_u16() as usize;
    let n = buf.get_u32() as usize;
    let ring = he.ring();
    if k != ring.basis().len() || n != ring.n() {
        return Err(PirError::Wire(format!(
            "shape {k}x{n} does not match ring {}x{}",
            ring.basis().len(),
            ring.n()
        )));
    }
    if buf.remaining() < 4 * k * n {
        return Err(PirError::Wire("truncated residues".into()));
    }
    let mut poly = RnsPoly::zero(ring, form);
    for m in 0..k {
        let q = ring.basis().moduli()[m].value();
        for w in poly.residue_mut(m) {
            let v = buf.get_u32() as u64;
            if v >= q {
                return Err(PirError::Wire(format!("residue {v} >= modulus {q}")));
            }
            *w = v;
        }
    }
    Ok(poly)
}

/// Serializes a BFV ciphertext.
pub fn write_bfv(buf: &mut BytesMut, ct: &BfvCiphertext) {
    put_header(buf, Tag::Bfv);
    write_poly(buf, &ct.a);
    write_poly(buf, &ct.b);
}

/// Deserializes a BFV ciphertext.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn read_bfv(he: &HeParams, buf: &mut impl Buf) -> Result<BfvCiphertext, PirError> {
    check_header(buf, Tag::Bfv)?;
    let a = read_poly(he, buf)?;
    let b = read_poly(he, buf)?;
    Ok(BfvCiphertext { a, b })
}

/// Serializes an RGSW ciphertext.
pub fn write_rgsw(buf: &mut BytesMut, ct: &RgswCiphertext) {
    put_header(buf, Tag::Rgsw);
    buf.put_u16(ct.rows().len() as u16);
    for row in ct.rows() {
        write_poly(buf, &row.a);
        write_poly(buf, &row.b);
    }
}

/// Deserializes an RGSW ciphertext.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn read_rgsw(he: &HeParams, buf: &mut impl Buf) -> Result<RgswCiphertext, PirError> {
    check_header(buf, Tag::Rgsw)?;
    if buf.remaining() < 2 {
        return Err(PirError::Wire("truncated row count".into()));
    }
    let rows = buf.get_u16() as usize;
    if rows != 2 * he.gadget().ell() {
        return Err(PirError::Wire(format!(
            "RGSW with {rows} rows, expected {}",
            2 * he.gadget().ell()
        )));
    }
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let a = read_poly(he, buf)?;
        let b = read_poly(he, buf)?;
        out.push(ive_he::rgsw::RgswRow { a, b });
    }
    Ok(RgswCiphertext::from_rows(out))
}

/// Serializes a full query (packed ciphertext + RGSW bits).
pub fn encode_query(query: &PirQuery) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::Query);
    buf.put_u16(query.row_bits().len() as u16);
    write_bfv(&mut buf, query.packed());
    for bit in query.row_bits() {
        write_rgsw(&mut buf, bit);
    }
    buf.freeze()
}

/// Deserializes a full query.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn decode_query(he: &HeParams, bytes: &Bytes) -> Result<PirQuery, PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::Query)?;
    if buf.remaining() < 2 {
        return Err(PirError::Wire("truncated bit count".into()));
    }
    let bits = buf.get_u16() as usize;
    let packed = read_bfv(he, &mut buf)?;
    let mut row_bits = Vec::with_capacity(bits);
    for _ in 0..bits {
        row_bits.push(read_rgsw(he, &mut buf)?);
    }
    if buf.has_remaining() {
        return Err(PirError::Wire(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(PirQuery::from_parts(packed, row_bits))
}

/// Serializes a server response (one ciphertext).
pub fn encode_response(ct: &BfvCiphertext) -> Bytes {
    let mut buf = BytesMut::new();
    write_bfv(&mut buf, ct);
    buf.freeze()
}

/// Deserializes a server response.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn decode_response(he: &HeParams, bytes: &Bytes) -> Result<BfvCiphertext, PirError> {
    let mut buf = bytes.clone();
    let ct = read_bfv(he, &mut buf)?;
    if buf.has_remaining() {
        return Err(PirError::Wire(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(ct)
}

/// Serializes one `evk_r` (exponent + rows).
pub fn encode_subs_key(key: &SubsKey) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32(key.r() as u32);
    buf.put_u16(key.rows().len() as u16);
    for (a, b) in key.rows() {
        write_poly(&mut buf, a);
        write_poly(&mut buf, b);
    }
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PirClient;
    use crate::db::Database;
    use crate::params::PirParams;
    use crate::server::PirServer;
    use rand::SeedableRng;

    #[test]
    fn query_roundtrip_preserves_answers() {
        let params = PirParams::toy();
        let he = params.he();
        let records: Vec<Vec<u8>> =
            (0..params.num_records()).map(|i| format!("wire {i}").into_bytes()).collect();
        let db = Database::from_records(&params, &records).expect("fits");
        let server = PirServer::new(&params, db).expect("geometry matches");
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(42)).expect("keygen");
        let query = client.query(11).expect("in range");
        // Over the wire and back.
        let encoded = encode_query(&query);
        let decoded = decode_query(he, &encoded).expect("well-formed");
        let r1 = server.answer(client.public_keys(), &query).expect("pipeline");
        let r2 = server.answer(client.public_keys(), &decoded).expect("pipeline");
        assert_eq!(r1, r2, "wire roundtrip changed the query");
        // Response over the wire.
        let resp_bytes = encode_response(&r1);
        let resp = decode_response(he, &resp_bytes).expect("well-formed");
        let plain = client.decode(&query, &resp).expect("decrypts");
        assert_eq!(&plain[..7], &records[11][..7]);
    }

    #[test]
    fn measured_sizes_match_model() {
        // The §VI-C communication model must agree with real encodings
        // to within the small framing overhead.
        let params = PirParams::toy();
        let he = params.he();
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(1)).expect("keygen");
        let query = client.query(0).expect("in range");
        let encoded = encode_query(&query);
        // Model counts packed residues (28-bit -> 3.5B); the wire uses
        // 4B words plus headers: ratio must stay below 1.25.
        let model = query.byte_len(he) as f64;
        let actual = encoded.len() as f64;
        let ratio = actual / model;
        assert!((1.0..1.25).contains(&ratio), "wire/model ratio {ratio:.3}");
    }

    #[test]
    fn corrupted_frames_rejected() {
        let params = PirParams::toy();
        let he = params.he();
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(2)).expect("keygen");
        let query = client.query(1).expect("in range");
        let good = encode_query(&query);
        // Truncation.
        let short = good.slice(..good.len() / 2);
        assert!(decode_query(he, &short).is_err());
        // Bad magic.
        let mut bad = BytesMut::from(&good[..]);
        bad[0] ^= 0xFF;
        assert!(decode_query(he, &bad.freeze()).is_err());
        // Out-of-range residue.
        let mut tampered = BytesMut::from(&good[..]);
        let idx = tampered.len() - 2;
        tampered[idx] = 0xFF;
        tampered[idx - 1] = 0xFF;
        tampered[idx - 2] = 0xFF;
        tampered[idx - 3] = 0xFF;
        assert!(decode_query(he, &tampered.freeze()).is_err());
    }

    #[test]
    fn wrong_ring_rejected() {
        let params = PirParams::toy();
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(3)).expect("keygen");
        let query = client.query(1).expect("in range");
        let encoded = encode_query(&query);
        // Decode against a different ring.
        let other = ive_he::HeParams::new(
            ive_math::rns::RingContext::test_ring(128, 2),
            16,
            ive_math::gadget::Gadget::new(14, 4),
            4,
        )
        .expect("valid");
        assert!(decode_query(&other, &encoded).is_err());
    }

    #[test]
    fn subs_key_encoding_nonempty() {
        let params = PirParams::toy();
        let he = params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let sk = ive_he::SecretKey::generate(he, &mut rng);
        let key = ive_he::SubsKey::generate(he, &sk, 3, &mut rng);
        let bytes = encode_subs_key(&key);
        assert!(bytes.len() > 4 * he.gadget().ell() * he.n());
    }
}
