//! Wire serialization for queries, responses, client key material, and
//! the session frames the serving runtime (`ive_serve`) speaks.
//!
//! The paper's communication accounting (§VI-C: "each query transfers
//! only a few MBs ... through PCIe") is measured here on actual encodings
//! rather than estimated: residues are packed at 4 bytes/word (the
//! special primes are 28-bit), with a small self-describing header.
//!
//! Every frame starts with the same 6-byte header: a 4-byte magic, a
//! format version byte, and a tag byte identifying the frame type. The
//! session frames implement the paper's ARK key-reuse motif (§V): a
//! client uploads its bulky `ClientKeys` once in a [`Tag::Hello`]
//! handshake, receives a session id in a [`Tag::Welcome`], and every
//! subsequent [`Tag::SessionQuery`] carries only the small per-query
//! material plus that id.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use ive_he::modswitch::SwitchedCiphertext;
use ive_he::{BfvCiphertext, HeParams, RgswCiphertext, SubsKey};
use ive_math::rns::{Form, RnsPoly};

use crate::client::{ClientKeys, PirQuery};
use crate::keyword::KvSchema;
use crate::kspir::{KsPirKeys, KsPirParams, KsPirQuery};
use crate::update::RecordUpdate;
use crate::PirError;

/// Format magic (`"IVE1"`).
const MAGIC: u32 = 0x4956_4531;

/// Wire format version carried in every header. Version 2 added the
/// version byte itself plus the `Response`, `ClientKeys`, and session
/// frames; version-1 frames (no version byte) are rejected.
pub const VERSION: u8 = 2;

/// Tags for the framed object types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Tag {
    /// One RNS polynomial.
    Poly = 1,
    /// A BFV ciphertext (two polynomials).
    Bfv = 2,
    /// An RGSW ciphertext (`2ℓ` RLWE rows).
    Rgsw = 3,
    /// A full PIR query (packed ciphertext + RGSW selection bits).
    Query = 4,
    /// A server response (one BFV ciphertext).
    Response = 5,
    /// A client's full evaluation-key set (`log D0` `evk_r` keys).
    ClientKeys = 6,
    /// Session handshake, client → server: the one-time key upload.
    Hello = 7,
    /// Session handshake, server → client: the assigned session id.
    Welcome = 8,
    /// An online query bound to a session (session id + request id).
    SessionQuery = 9,
    /// The response to one [`Tag::SessionQuery`] (echoes the request id).
    SessionResponse = 10,
    /// A per-request server-side failure report.
    Error = 11,
    /// A batch of row put/delete deltas for the live database
    /// (client → server; see [`crate::update`]).
    UpdateRow = 12,
    /// The acknowledgement of one [`Tag::UpdateRow`] batch: the epoch it
    /// committed as and how many deltas it carried.
    UpdateAck = 13,
    /// Keyword-session handshake, client → server: the one-time upload
    /// of the client's `log N` trace keys (see [`crate::kspir`]).
    KsHello = 14,
    /// Keyword-session handshake reply: the session id plus the server's
    /// keyword schema (hash seed + table geometry, see
    /// [`crate::keyword::KvSchema`]).
    KsWelcome = 15,
    /// A keyword-PIR scalar query bound to a keyword session.
    KsQuery = 16,
    /// The response to one [`Tag::KsQuery`] (echoes the request id).
    KsResponse = 17,
    /// A modulus-switched session response (§VII response compression;
    /// see [`ive_he::modswitch`]).
    CompressedResponse = 18,
    /// A key→value put/delete for the live keyword store.
    KvUpdate = 19,
    /// A live-stats scrape request (client → server, any connection).
    GetStats = 20,
    /// The reply to one [`Tag::GetStats`]: the full [`StatsReport`].
    StatsResponse = 21,
}

impl Tag {
    /// The tag for a raw byte, if it names a known frame type.
    pub fn from_byte(b: u8) -> Option<Tag> {
        match b {
            1 => Some(Tag::Poly),
            2 => Some(Tag::Bfv),
            3 => Some(Tag::Rgsw),
            4 => Some(Tag::Query),
            5 => Some(Tag::Response),
            6 => Some(Tag::ClientKeys),
            7 => Some(Tag::Hello),
            8 => Some(Tag::Welcome),
            9 => Some(Tag::SessionQuery),
            10 => Some(Tag::SessionResponse),
            11 => Some(Tag::Error),
            12 => Some(Tag::UpdateRow),
            13 => Some(Tag::UpdateAck),
            14 => Some(Tag::KsHello),
            15 => Some(Tag::KsWelcome),
            16 => Some(Tag::KsQuery),
            17 => Some(Tag::KsResponse),
            18 => Some(Tag::CompressedResponse),
            19 => Some(Tag::KvUpdate),
            20 => Some(Tag::GetStats),
            21 => Some(Tag::StatsResponse),
            _ => None,
        }
    }

    /// The frame type's name, for error messages.
    pub fn name(self) -> &'static str {
        match self {
            Tag::Poly => "Poly",
            Tag::Bfv => "Bfv",
            Tag::Rgsw => "Rgsw",
            Tag::Query => "Query",
            Tag::Response => "Response",
            Tag::ClientKeys => "ClientKeys",
            Tag::Hello => "Hello",
            Tag::Welcome => "Welcome",
            Tag::SessionQuery => "SessionQuery",
            Tag::SessionResponse => "SessionResponse",
            Tag::Error => "Error",
            Tag::UpdateRow => "UpdateRow",
            Tag::UpdateAck => "UpdateAck",
            Tag::KsHello => "KsHello",
            Tag::KsWelcome => "KsWelcome",
            Tag::KsQuery => "KsQuery",
            Tag::KsResponse => "KsResponse",
            Tag::CompressedResponse => "CompressedResponse",
            Tag::KvUpdate => "KvUpdate",
            Tag::GetStats => "GetStats",
            Tag::StatsResponse => "StatsResponse",
        }
    }
}

/// Describes a raw tag byte by name when it is a known frame type.
fn describe_tag(b: u8) -> String {
    match Tag::from_byte(b) {
        Some(tag) => format!("{} (tag {b})", tag.name()),
        None => format!("unknown tag {b}"),
    }
}

fn put_header(buf: &mut BytesMut, tag: Tag) {
    buf.put_u32(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(tag as u8);
}

/// Consumes and validates the magic + version, returning the raw tag
/// byte. The single header parser behind both [`peek_tag`] and the typed
/// decoders, so they can never disagree on what a valid frame is.
fn read_header(buf: &mut impl Buf) -> Result<u8, PirError> {
    if buf.remaining() < 6 {
        return Err(PirError::Wire("truncated header".into()));
    }
    if buf.get_u32() != MAGIC {
        return Err(PirError::Wire("bad magic".into()));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(PirError::Wire(format!(
            "unsupported wire version {version} (this build speaks {VERSION})"
        )));
    }
    Ok(buf.get_u8())
}

fn check_header(buf: &mut impl Buf, tag: Tag) -> Result<(), PirError> {
    let got = read_header(buf)?;
    if got != tag as u8 {
        return Err(PirError::Wire(format!(
            "expected {} frame (tag {}), got {}",
            tag.name(),
            tag as u8,
            describe_tag(got)
        )));
    }
    Ok(())
}

/// Reads the tag of a frame without consuming it — the dispatch point for
/// a server demultiplexing incoming session frames.
///
/// # Errors
/// Fails on truncation, bad magic, wrong version, or an unknown tag.
pub fn peek_tag(bytes: &Bytes) -> Result<Tag, PirError> {
    let mut buf = bytes.clone();
    let raw = read_header(&mut buf)?;
    Tag::from_byte(raw).ok_or_else(|| PirError::Wire(format!("unknown tag {raw}")))
}

/// Serializes one polynomial (form byte + residue words).
pub fn write_poly(buf: &mut BytesMut, poly: &RnsPoly) {
    put_header(buf, Tag::Poly);
    buf.put_u8(match poly.form() {
        Form::Coeff => 0,
        Form::Ntt => 1,
    });
    let k = poly.ctx().basis().len();
    let n = poly.ctx().n();
    buf.put_u16(k as u16);
    buf.put_u32(n as u32);
    for m in 0..k {
        for &w in poly.residue(m) {
            debug_assert!(w < u32::MAX as u64, "residue exceeds 4-byte packing");
            buf.put_u32(w as u32);
        }
    }
}

/// Deserializes one polynomial against the given parameters.
///
/// # Errors
/// Fails on truncation, bad framing, or shape/value mismatch.
pub fn read_poly(he: &HeParams, buf: &mut impl Buf) -> Result<RnsPoly, PirError> {
    check_header(buf, Tag::Poly)?;
    if buf.remaining() < 7 {
        return Err(PirError::Wire("truncated poly header".into()));
    }
    let form = match buf.get_u8() {
        0 => Form::Coeff,
        1 => Form::Ntt,
        other => return Err(PirError::Wire(format!("unknown form {other}"))),
    };
    let k = buf.get_u16() as usize;
    let n = buf.get_u32() as usize;
    let ring = he.ring();
    if k != ring.basis().len() || n != ring.n() {
        return Err(PirError::Wire(format!(
            "shape {k}x{n} does not match ring {}x{}",
            ring.basis().len(),
            ring.n()
        )));
    }
    if buf.remaining() < 4 * k * n {
        return Err(PirError::Wire("truncated residues".into()));
    }
    let mut poly = RnsPoly::zero(ring, form);
    for m in 0..k {
        let q = ring.basis().moduli()[m].value();
        for w in poly.residue_mut(m) {
            let v = buf.get_u32() as u64;
            if v >= q {
                return Err(PirError::Wire(format!("residue {v} >= modulus {q}")));
            }
            *w = v;
        }
    }
    Ok(poly)
}

/// Serializes a BFV ciphertext.
pub fn write_bfv(buf: &mut BytesMut, ct: &BfvCiphertext) {
    put_header(buf, Tag::Bfv);
    write_poly(buf, &ct.a);
    write_poly(buf, &ct.b);
}

/// Deserializes a BFV ciphertext.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn read_bfv(he: &HeParams, buf: &mut impl Buf) -> Result<BfvCiphertext, PirError> {
    check_header(buf, Tag::Bfv)?;
    let a = read_poly(he, buf)?;
    let b = read_poly(he, buf)?;
    Ok(BfvCiphertext { a, b })
}

/// Serializes an RGSW ciphertext.
pub fn write_rgsw(buf: &mut BytesMut, ct: &RgswCiphertext) {
    put_header(buf, Tag::Rgsw);
    buf.put_u16(ct.rows().len() as u16);
    for row in ct.rows() {
        write_poly(buf, &row.a);
        write_poly(buf, &row.b);
    }
}

/// Deserializes an RGSW ciphertext.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn read_rgsw(he: &HeParams, buf: &mut impl Buf) -> Result<RgswCiphertext, PirError> {
    check_header(buf, Tag::Rgsw)?;
    if buf.remaining() < 2 {
        return Err(PirError::Wire("truncated row count".into()));
    }
    let rows = buf.get_u16() as usize;
    if rows != 2 * he.gadget().ell() {
        return Err(PirError::Wire(format!(
            "RGSW with {rows} rows, expected {}",
            2 * he.gadget().ell()
        )));
    }
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let a = read_poly(he, buf)?;
        let b = read_poly(he, buf)?;
        out.push(ive_he::rgsw::RgswRow { a, b });
    }
    Ok(RgswCiphertext::from_rows(out))
}

/// The query body shared by [`Tag::Query`] and [`Tag::SessionQuery`].
fn write_query_body(buf: &mut BytesMut, query: &PirQuery) {
    buf.put_u16(query.row_bits().len() as u16);
    write_bfv(buf, query.packed());
    for bit in query.row_bits() {
        write_rgsw(buf, bit);
    }
}

fn read_query_body(he: &HeParams, buf: &mut impl Buf) -> Result<PirQuery, PirError> {
    if buf.remaining() < 2 {
        return Err(PirError::Wire("truncated bit count".into()));
    }
    let bits = buf.get_u16() as usize;
    let packed = read_bfv(he, buf)?;
    let mut row_bits = Vec::with_capacity(bits);
    for _ in 0..bits {
        row_bits.push(read_rgsw(he, buf)?);
    }
    Ok(PirQuery::from_parts(packed, row_bits))
}

fn check_drained(buf: &impl Buf) -> Result<(), PirError> {
    if buf.has_remaining() {
        return Err(PirError::Wire(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(())
}

/// Serializes a full query (packed ciphertext + RGSW bits).
pub fn encode_query(query: &PirQuery) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::Query);
    write_query_body(&mut buf, query);
    buf.freeze()
}

/// Deserializes a full query.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn decode_query(he: &HeParams, bytes: &Bytes) -> Result<PirQuery, PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::Query)?;
    let query = read_query_body(he, &mut buf)?;
    check_drained(&buf)?;
    Ok(query)
}

/// Serializes a server response (one ciphertext) as a tagged frame.
pub fn encode_response(ct: &BfvCiphertext) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::Response);
    write_bfv(&mut buf, ct);
    buf.freeze()
}

/// Deserializes a server response.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn decode_response(he: &HeParams, bytes: &Bytes) -> Result<BfvCiphertext, PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::Response)?;
    let ct = read_bfv(he, &mut buf)?;
    check_drained(&buf)?;
    Ok(ct)
}

/// Serializes one `evk_r` entry (exponent + gadget rows) — the unit both
/// key-upload frames ([`Tag::Hello`], [`Tag::KsHello`]) are built from.
fn write_subs_key_entry(buf: &mut BytesMut, key: &SubsKey) {
    buf.put_u32(key.r() as u32);
    buf.put_u16(key.rows().len() as u16);
    for (a, b) in key.rows() {
        write_poly(buf, a);
        write_poly(buf, b);
    }
}

/// Deserializes and validates one `evk_r` entry.
fn read_subs_key_entry(he: &HeParams, buf: &mut impl Buf) -> Result<SubsKey, PirError> {
    if buf.remaining() < 6 {
        return Err(PirError::Wire("truncated evk header".into()));
    }
    let r = buf.get_u32() as usize;
    if r.is_multiple_of(2) || r >= 2 * he.n() {
        return Err(PirError::Wire(format!(
            "automorphism exponent {r} not odd in [1, 2N = {})",
            2 * he.n()
        )));
    }
    let rows = buf.get_u16() as usize;
    if rows != he.gadget().ell() {
        return Err(PirError::Wire(format!(
            "evk with {rows} rows, expected {}",
            he.gadget().ell()
        )));
    }
    let mut pairs = Vec::with_capacity(rows);
    for _ in 0..rows {
        let a = read_poly(he, buf)?;
        let b = read_poly(he, buf)?;
        pairs.push((a, b));
    }
    Ok(SubsKey::from_parts(r, pairs))
}

/// The `ClientKeys` body shared by [`Tag::ClientKeys`] and [`Tag::Hello`].
fn write_client_keys_body(buf: &mut BytesMut, keys: &ClientKeys) {
    buf.put_u16(keys.subs_keys().len() as u16);
    for key in keys.subs_keys() {
        write_subs_key_entry(buf, key);
    }
}

fn read_client_keys_body(he: &HeParams, buf: &mut impl Buf) -> Result<ClientKeys, PirError> {
    if buf.remaining() < 2 {
        return Err(PirError::Wire("truncated key count".into()));
    }
    let count = buf.get_u16() as usize;
    // A key per ExpandQuery level: log N bounds the legal count (§II-A).
    let max = usize::BITS as usize;
    if count > max {
        return Err(PirError::Wire(format!("{count} evaluation keys exceed the {max} cap")));
    }
    let mut subs = Vec::with_capacity(count);
    for _ in 0..count {
        subs.push(read_subs_key_entry(he, buf)?);
    }
    Ok(ClientKeys::from_subs_keys(subs))
}

/// Serializes a client's full evaluation-key set.
pub fn encode_client_keys(keys: &ClientKeys) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::ClientKeys);
    write_client_keys_body(&mut buf, keys);
    buf.freeze()
}

/// Deserializes a client's full evaluation-key set.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn decode_client_keys(he: &HeParams, bytes: &Bytes) -> Result<ClientKeys, PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::ClientKeys)?;
    let keys = read_client_keys_body(he, &mut buf)?;
    check_drained(&buf)?;
    Ok(keys)
}

/// Serializes the session handshake: the one-time upload of the client's
/// evaluation keys (the paper's ARK key-registration step, §V).
pub fn encode_hello(keys: &ClientKeys) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::Hello);
    write_client_keys_body(&mut buf, keys);
    buf.freeze()
}

/// Deserializes a session handshake into the uploaded key set.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn decode_hello(he: &HeParams, bytes: &Bytes) -> Result<ClientKeys, PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::Hello)?;
    let keys = read_client_keys_body(he, &mut buf)?;
    check_drained(&buf)?;
    Ok(keys)
}

/// Serializes the handshake reply: the session id under which the keys
/// were cached.
pub fn encode_welcome(session_id: u64) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::Welcome);
    buf.put_u64(session_id);
    buf.freeze()
}

/// Deserializes a handshake reply into the session id.
///
/// # Errors
/// Fails on framing errors.
pub fn decode_welcome(bytes: &Bytes) -> Result<u64, PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::Welcome)?;
    if buf.remaining() < 8 {
        return Err(PirError::Wire("truncated session id".into()));
    }
    let session = buf.get_u64();
    check_drained(&buf)?;
    Ok(session)
}

/// Serializes an online query: session id, client-chosen request id, and
/// the per-query material only (the keys stay cached server-side).
pub fn encode_session_query(session_id: u64, request_id: u64, query: &PirQuery) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::SessionQuery);
    buf.put_u64(session_id);
    buf.put_u64(request_id);
    write_query_body(&mut buf, query);
    buf.freeze()
}

/// Deserializes an online query into `(session_id, request_id, query)`.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn decode_session_query(
    he: &HeParams,
    bytes: &Bytes,
) -> Result<(u64, u64, PirQuery), PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::SessionQuery)?;
    if buf.remaining() < 16 {
        return Err(PirError::Wire("truncated session/request ids".into()));
    }
    let session = buf.get_u64();
    let request = buf.get_u64();
    let query = read_query_body(he, &mut buf)?;
    check_drained(&buf)?;
    Ok((session, request, query))
}

/// Serializes the response to one session query.
pub fn encode_session_response(request_id: u64, ct: &BfvCiphertext) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::SessionResponse);
    buf.put_u64(request_id);
    write_bfv(&mut buf, ct);
    buf.freeze()
}

/// Deserializes a session response into `(request_id, ciphertext)`.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn decode_session_response(
    he: &HeParams,
    bytes: &Bytes,
) -> Result<(u64, BfvCiphertext), PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::SessionResponse)?;
    if buf.remaining() < 8 {
        return Err(PirError::Wire("truncated request id".into()));
    }
    let request = buf.get_u64();
    let ct = read_bfv(he, &mut buf)?;
    check_drained(&buf)?;
    Ok((request, ct))
}

/// Serializes a per-request failure report.
pub fn encode_error_frame(request_id: u64, message: &str) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::Error);
    buf.put_u64(request_id);
    let msg = message.as_bytes();
    buf.put_u32(msg.len() as u32);
    buf.put_slice(msg);
    buf.freeze()
}

/// Deserializes a failure report into `(request_id, message)`.
///
/// # Errors
/// Fails on framing errors or a non-UTF-8 message.
pub fn decode_error_frame(bytes: &Bytes) -> Result<(u64, String), PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::Error)?;
    if buf.remaining() < 12 {
        return Err(PirError::Wire("truncated error frame".into()));
    }
    let request = buf.get_u64();
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(PirError::Wire("truncated error message".into()));
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    check_drained(&buf)?;
    let message =
        String::from_utf8(raw).map_err(|_| PirError::Wire("error message not UTF-8".into()))?;
    Ok((request, message))
}

/// Delta kind bytes inside an [`Tag::UpdateRow`] frame.
const UPDATE_KIND_DELETE: u8 = 0;
const UPDATE_KIND_PUT: u8 = 1;

/// Serializes a batch of row deltas under a client-chosen request id.
/// Deltas travel as raw record bytes — the server runs the §II-B
/// preprocessing on its side, off the query hot path.
///
/// # Errors
/// Fails when the batch exceeds the `u16` per-frame delta count; chunk
/// larger ingests across frames (each frame is one epoch anyway).
pub fn encode_update_rows(request_id: u64, updates: &[RecordUpdate]) -> Result<Bytes, PirError> {
    if updates.len() > usize::from(u16::MAX) {
        return Err(PirError::InvalidParams(format!(
            "update batch of {} deltas exceeds the {} per-frame cap",
            updates.len(),
            u16::MAX
        )));
    }
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::UpdateRow);
    buf.put_u64(request_id);
    buf.put_u16(updates.len() as u16);
    for u in updates {
        buf.put_u64(u.index() as u64);
        match u {
            RecordUpdate::Delete { .. } => buf.put_u8(UPDATE_KIND_DELETE),
            RecordUpdate::Put { bytes, .. } => {
                buf.put_u8(UPDATE_KIND_PUT);
                buf.put_u32(bytes.len() as u32);
                buf.put_slice(bytes);
            }
        }
    }
    Ok(buf.freeze())
}

/// Deserializes a row-delta batch into `(request_id, updates)`,
/// validating every index against the geometry and every payload against
/// the record capacity — a malformed frame is rejected here, before it
/// can reach the staging log.
///
/// # Errors
/// Fails on framing errors, out-of-range indices, oversized payloads, or
/// an unknown delta kind.
pub fn decode_update_rows(
    params: &crate::PirParams,
    bytes: &Bytes,
) -> Result<(u64, Vec<RecordUpdate>), PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::UpdateRow)?;
    if buf.remaining() < 10 {
        return Err(PirError::Wire("truncated update header".into()));
    }
    let request_id = buf.get_u64();
    let count = buf.get_u16() as usize;
    let mut updates = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 9 {
            return Err(PirError::Wire("truncated update entry".into()));
        }
        let index = buf.get_u64() as usize;
        if index >= params.num_records() {
            return Err(PirError::Wire(format!(
                "update index {index} out of range (database holds {})",
                params.num_records()
            )));
        }
        match buf.get_u8() {
            UPDATE_KIND_DELETE => updates.push(RecordUpdate::Delete { index }),
            UPDATE_KIND_PUT => {
                if buf.remaining() < 4 {
                    return Err(PirError::Wire("truncated update payload length".into()));
                }
                let len = buf.get_u32() as usize;
                if len > params.record_bytes() {
                    return Err(PirError::Wire(format!(
                        "update payload of {len} bytes exceeds the {}-byte record capacity",
                        params.record_bytes()
                    )));
                }
                if buf.remaining() < len {
                    return Err(PirError::Wire("truncated update payload".into()));
                }
                let mut payload = vec![0u8; len];
                buf.copy_to_slice(&mut payload);
                updates.push(RecordUpdate::Put { index, bytes: payload });
            }
            other => return Err(PirError::Wire(format!("unknown update kind {other}"))),
        }
    }
    check_drained(&buf)?;
    Ok((request_id, updates))
}

/// Serializes the acknowledgement of one committed update batch.
pub fn encode_update_ack(request_id: u64, epoch: u64, applied: u32) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::UpdateAck);
    buf.put_u64(request_id);
    buf.put_u64(epoch);
    buf.put_u32(applied);
    buf.freeze()
}

/// Deserializes an update acknowledgement into
/// `(request_id, epoch, applied)`.
///
/// # Errors
/// Fails on framing errors.
pub fn decode_update_ack(bytes: &Bytes) -> Result<(u64, u64, u32), PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::UpdateAck)?;
    if buf.remaining() < 20 {
        return Err(PirError::Wire("truncated update ack".into()));
    }
    let request_id = buf.get_u64();
    let epoch = buf.get_u64();
    let applied = buf.get_u32();
    check_drained(&buf)?;
    Ok((request_id, epoch, applied))
}

/// Serializes one `evk_r` (exponent + rows).
pub fn encode_subs_key(key: &SubsKey) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32(key.r() as u32);
    buf.put_u16(key.rows().len() as u16);
    for (a, b) in key.rows() {
        write_poly(&mut buf, a);
        write_poly(&mut buf, b);
    }
    buf.freeze()
}

/// Serializes the keyword-session handshake: the one-time upload of the
/// client's trace key-switching keys (one per halving round, log N total).
pub fn encode_ks_hello(keys: &KsPirKeys) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::KsHello);
    buf.put_u16(keys.trace_keys().len() as u16);
    for key in keys.trace_keys() {
        write_subs_key_entry(&mut buf, key);
    }
    buf.freeze()
}

/// Deserializes a keyword-session handshake into the uploaded key set.
///
/// The homomorphic trace needs exactly `log N` automorphism keys, so any
/// other count is rejected before the keys reach the session cache.
///
/// # Errors
/// Fails on framing or shape errors, or a key count other than `log N`.
pub fn decode_ks_hello(he: &HeParams, bytes: &Bytes) -> Result<KsPirKeys, PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::KsHello)?;
    if buf.remaining() < 2 {
        return Err(PirError::Wire("truncated key count".into()));
    }
    let count = buf.get_u16() as usize;
    let need = ive_math::log2_exact(he.n())? as usize;
    if count != need {
        return Err(PirError::Wire(format!(
            "keyword hello carries {count} trace keys, the trace needs exactly {need}"
        )));
    }
    let mut trace = Vec::with_capacity(count);
    for _ in 0..count {
        trace.push(read_subs_key_entry(he, &mut buf)?);
    }
    check_drained(&buf)?;
    Ok(KsPirKeys::from_parts(trace))
}

/// Serializes the keyword handshake reply: the session id plus the
/// server's table layout (hash seed, bucket count, slots per group) —
/// everything a client needs to map `key -> slot indices` locally.
pub fn encode_ks_welcome(session_id: u64, schema: &KvSchema) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::KsWelcome);
    buf.put_u64(session_id);
    buf.put_u64(schema.seed());
    buf.put_u64(schema.buckets() as u64);
    buf.put_u16(schema.group_slots() as u16);
    buf.freeze()
}

/// Deserializes a keyword handshake reply into `(session_id, schema)`.
///
/// The schema is rebuilt locally from the advertised seed; the advertised
/// bucket count and group width must match what the client's own
/// parameters derive, otherwise the two sides disagree on geometry and
/// every retrieval would silently decode garbage.
///
/// # Errors
/// Fails on framing errors or a layout that contradicts `params`.
pub fn decode_ks_welcome(params: &KsPirParams, bytes: &Bytes) -> Result<(u64, KvSchema), PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::KsWelcome)?;
    if buf.remaining() < 26 {
        return Err(PirError::Wire("truncated keyword welcome".into()));
    }
    let session = buf.get_u64();
    let seed = buf.get_u64();
    let buckets = buf.get_u64() as usize;
    let group = buf.get_u16() as usize;
    check_drained(&buf)?;
    let schema = KvSchema::new(params.clone(), seed)?;
    if buckets != schema.buckets() || group != schema.group_slots() {
        return Err(PirError::Wire(format!(
            "advertised layout {buckets}x{group} does not match the {}x{} \
             derived from the client parameters",
            schema.buckets(),
            schema.group_slots()
        )));
    }
    Ok((session, schema))
}

/// Serializes one keyword retrieval query: session id, client-chosen
/// request id, and the per-slot query material (packed coefficient
/// selector + RGSW chunk bits).
pub fn encode_ks_query(session_id: u64, request_id: u64, query: &KsPirQuery) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::KsQuery);
    buf.put_u64(session_id);
    buf.put_u64(request_id);
    buf.put_u16(query.chunk_bits().len() as u16);
    write_bfv(&mut buf, query.ct());
    for bit in query.chunk_bits() {
        write_rgsw(&mut buf, bit);
    }
    buf.freeze()
}

/// Deserializes a keyword query into `(session_id, request_id, query)`,
/// rejecting any chunk-bit count other than the tournament depth.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn decode_ks_query(
    params: &KsPirParams,
    bytes: &Bytes,
) -> Result<(u64, u64, KsPirQuery), PirError> {
    let he = params.he();
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::KsQuery)?;
    if buf.remaining() < 18 {
        return Err(PirError::Wire("truncated keyword query header".into()));
    }
    let session = buf.get_u64();
    let request = buf.get_u64();
    let bits = buf.get_u16() as usize;
    if bits != params.log_chunks() as usize {
        return Err(PirError::Wire(format!(
            "keyword query carries {bits} chunk bits, the tournament needs {}",
            params.log_chunks()
        )));
    }
    let ct = read_bfv(he, &mut buf)?;
    let mut chunk_bits = Vec::with_capacity(bits);
    for _ in 0..bits {
        chunk_bits.push(read_rgsw(he, &mut buf)?);
    }
    check_drained(&buf)?;
    Ok((session, request, KsPirQuery::from_parts(ct, chunk_bits)))
}

/// Serializes the response to one keyword query.
pub fn encode_ks_response(request_id: u64, ct: &BfvCiphertext) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::KsResponse);
    buf.put_u64(request_id);
    write_bfv(&mut buf, ct);
    buf.freeze()
}

/// Deserializes a keyword response into `(request_id, ciphertext)`.
///
/// # Errors
/// Fails on framing or shape errors.
pub fn decode_ks_response(he: &HeParams, bytes: &Bytes) -> Result<(u64, BfvCiphertext), PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::KsResponse)?;
    if buf.remaining() < 8 {
        return Err(PirError::Wire("truncated request id".into()));
    }
    let request = buf.get_u64();
    let ct = read_bfv(he, &mut buf)?;
    check_drained(&buf)?;
    Ok((request, ct))
}

/// Serializes a modulus-switched response: only the `primes` retained
/// residues travel, cutting downlink traffic by `k / primes` versus a
/// full [`Tag::SessionResponse`] (Table VIII's response compression).
pub fn encode_compressed_response(request_id: u64, ct: &SwitchedCiphertext) -> Bytes {
    let n = ct.a.len() / ct.primes;
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::CompressedResponse);
    buf.put_u64(request_id);
    buf.put_u16(ct.primes as u16);
    buf.put_u32(n as u32);
    for &w in ct.a.iter().chain(ct.b.iter()) {
        debug_assert!(w < u32::MAX as u64, "residue exceeds 4-byte packing");
        buf.put_u32(w as u32);
    }
    buf.freeze()
}

/// Deserializes a modulus-switched response into
/// `(request_id, ciphertext)`, validating the retained prime count
/// against the basis and every residue against its modulus.
///
/// # Errors
/// Fails on framing errors, a prime count outside `[1, k]`, a ring-size
/// mismatch, or an out-of-range residue.
pub fn decode_compressed_response(
    he: &HeParams,
    bytes: &Bytes,
) -> Result<(u64, SwitchedCiphertext), PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::CompressedResponse)?;
    if buf.remaining() < 14 {
        return Err(PirError::Wire("truncated compressed response header".into()));
    }
    let request = buf.get_u64();
    let primes = buf.get_u16() as usize;
    let n = buf.get_u32() as usize;
    let k = he.ring().basis().len();
    if primes == 0 || primes > k {
        return Err(PirError::Wire(format!(
            "compressed response retains {primes} primes, the basis holds {k}"
        )));
    }
    if n != he.n() {
        return Err(PirError::Wire(format!("ring size {n} does not match N = {}", he.n())));
    }
    let words = primes * n;
    if buf.remaining() < 4 * 2 * words {
        return Err(PirError::Wire("truncated compressed residues".into()));
    }
    let moduli = he.ring().basis().moduli();
    let read_half = |buf: &mut Bytes| -> Result<Vec<u64>, PirError> {
        let mut out = Vec::with_capacity(words);
        for i in 0..words {
            let v = buf.get_u32() as u64;
            let q = moduli[i / n].value();
            if v >= q {
                return Err(PirError::Wire(format!("residue {v} >= modulus {q}")));
            }
            out.push(v);
        }
        Ok(out)
    };
    let a = read_half(&mut buf)?;
    let b = read_half(&mut buf)?;
    check_drained(&buf)?;
    Ok((request, SwitchedCiphertext { primes, a, b }))
}

/// Largest key a [`Tag::KvUpdate`] frame accepts, in bytes.
pub const MAX_KV_KEY_BYTES: usize = 4096;

/// Delta kind bytes inside a [`Tag::KvUpdate`] frame.
const KV_KIND_DELETE: u8 = 0;
const KV_KIND_PUT: u8 = 1;

/// Serializes one keyword-store mutation (`value: Some` puts, `None`
/// deletes) under a client-chosen request id.
///
/// # Errors
/// Fails on an empty key or one longer than [`MAX_KV_KEY_BYTES`].
pub fn encode_kv_update(
    request_id: u64,
    key: &[u8],
    value: Option<u64>,
) -> Result<Bytes, PirError> {
    if key.is_empty() {
        return Err(PirError::InvalidParams("empty keyword-store key".into()));
    }
    if key.len() > MAX_KV_KEY_BYTES {
        return Err(PirError::InvalidParams(format!(
            "key of {} bytes exceeds the {MAX_KV_KEY_BYTES}-byte cap",
            key.len()
        )));
    }
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::KvUpdate);
    buf.put_u64(request_id);
    match value {
        None => buf.put_u8(KV_KIND_DELETE),
        Some(v) => {
            buf.put_u8(KV_KIND_PUT);
            buf.put_u64(v);
        }
    }
    buf.put_u16(key.len() as u16);
    buf.put_slice(key);
    Ok(buf.freeze())
}

/// Deserializes a keyword-store mutation into
/// `(request_id, key, value)` — `value` is `None` for a delete.
///
/// # Errors
/// Fails on framing errors, an unknown kind, or an empty/oversized key.
pub fn decode_kv_update(bytes: &Bytes) -> Result<(u64, Vec<u8>, Option<u64>), PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::KvUpdate)?;
    if buf.remaining() < 9 {
        return Err(PirError::Wire("truncated kv update header".into()));
    }
    let request = buf.get_u64();
    let value = match buf.get_u8() {
        KV_KIND_DELETE => None,
        KV_KIND_PUT => {
            if buf.remaining() < 8 {
                return Err(PirError::Wire("truncated kv update value".into()));
            }
            Some(buf.get_u64())
        }
        other => return Err(PirError::Wire(format!("unknown kv update kind {other}"))),
    };
    if buf.remaining() < 2 {
        return Err(PirError::Wire("truncated kv key length".into()));
    }
    let len = buf.get_u16() as usize;
    if len == 0 {
        return Err(PirError::Wire("empty keyword-store key".into()));
    }
    if len > MAX_KV_KEY_BYTES {
        return Err(PirError::Wire(format!(
            "key of {len} bytes exceeds the {MAX_KV_KEY_BYTES}-byte cap"
        )));
    }
    if buf.remaining() < len {
        return Err(PirError::Wire("truncated kv key".into()));
    }
    let mut key = vec![0u8; len];
    buf.copy_to_slice(&mut key);
    check_drained(&buf)?;
    Ok((request, key, value))
}

/// Largest log₂ histogram a [`Tag::StatsResponse`] frame accepts — wide
/// enough for any duration histogram (2^64 µs ≫ the age of the
/// universe), tight enough to bound a hostile frame.
pub const MAX_STATS_BUCKETS: usize = 64;

/// Largest per-stage histogram count in a [`Tag::StatsResponse`] frame:
/// room for the current stage taxonomy to grow without a wire bump.
pub const MAX_STATS_STAGES: usize = 16;

/// One pipeline stage's histogram inside a [`StatsReport`]. Stages are
/// positional: entry `i` is stage `i` of the serving layer's fixed
/// taxonomy (`ive_serve::trace::Stage`), so the wire stays free of
/// string labels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageReport {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, µs.
    pub sum_us: u64,
    /// Largest sample, µs.
    pub max_us: u64,
    /// Log₂ bucket counts: bucket `i` holds samples in
    /// `[2^i, 2^(i+1))` µs.
    pub buckets: Vec<u64>,
}

/// The raw server statistics a [`Tag::StatsResponse`] frame carries:
/// every field is an integer counter or histogram, so the encoding is
/// canonical and the receiver derives rates/quantiles itself (exactly
/// the arithmetic `ive_serve::ServerStats` applies in-process).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Queries answered successfully.
    pub queries: u64,
    /// Queries that failed server-side.
    pub errors: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Sum of dispatched batch sizes (mean batch = this / batches).
    pub batch_query_sum: u64,
    /// Batches that coalesced more than one query.
    pub batches_multi: u64,
    /// Largest dispatched batch.
    pub max_batch: u64,
    /// Queries currently waiting for a window.
    pub queue_depth: u64,
    /// High-water mark of the waiting queue.
    pub queue_depth_max: u64,
    /// Update batches committed (each is one epoch boundary).
    pub update_batches: u64,
    /// Total row deltas committed.
    pub updates_applied: u64,
    /// The database epoch answers currently reflect.
    pub epoch: u64,
    /// Microseconds since the server's metrics were created.
    pub uptime_us: u64,
    /// Sum of end-to-end query latencies, µs.
    pub latency_sum_us: u64,
    /// Worst observed end-to-end latency, µs.
    pub latency_max_us: u64,
    /// End-to-end latency log₂ histogram (bucket `i` = `[2^i, 2^(i+1))`
    /// µs).
    pub latency_buckets: Vec<u64>,
    /// Per-stage histograms, positional by stage discriminant.
    pub stages: Vec<StageReport>,
    /// Residue-polynomial (i)NTT executions (kernel op counter).
    pub residue_ntts: u64,
    /// Modular multiply-accumulates (kernel op counter — the paper's
    /// mult/s axis).
    pub pointwise_macs: u64,
    /// Coefficients reconstructed through iCRT (kernel op counter).
    pub icrt_coeffs: u64,
    /// Coefficients moved through automorphisms (kernel op counter).
    pub auto_coeffs: u64,
    /// Database bytes streamed by `RowSel` scans.
    pub scan_bytes: u64,
    /// Wall nanoseconds those scans took (bytes/ns = effective GB/s).
    pub scan_ns: u64,
    /// Queries that crossed the slow-trace threshold.
    pub slow_queries: u64,
    /// Queries shed at admission with a typed `Busy` rejection.
    pub busy_rejections: u64,
    /// Session-cache LRU evictions performed to admit new sessions.
    pub session_evictions: u64,
    /// Connections closed after their idle deadline expired.
    pub timeouts: u64,
    /// Duplicate update requests answered from the idempotency cache
    /// instead of re-applied (a client retried an already-acked batch).
    pub retries: u64,
    /// Hello handshakes that re-registered over a connection that
    /// already held a session (evicted clients recovering).
    pub reconnects: u64,
    /// Worker panics caught and converted into typed error frames.
    pub worker_panics: u64,
    /// Queries answered while the service was draining for shutdown.
    pub drained_jobs: u64,
}

/// Serializes a stats scrape request under a client-chosen request id.
pub fn encode_get_stats(request_id: u64) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::GetStats);
    buf.put_u64(request_id);
    buf.freeze()
}

/// Deserializes a stats scrape request into its request id.
///
/// # Errors
/// Fails on framing errors.
pub fn decode_get_stats(bytes: &Bytes) -> Result<u64, PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::GetStats)?;
    if buf.remaining() < 8 {
        return Err(PirError::Wire("truncated request id".into()));
    }
    let request = buf.get_u64();
    check_drained(&buf)?;
    Ok(request)
}

/// Writes one `u64` histogram with a `u16` length prefix.
fn write_buckets(buf: &mut BytesMut, buckets: &[u64]) {
    buf.put_u16(buckets.len() as u16);
    for &b in buckets {
        buf.put_u64(b);
    }
}

/// Reads one length-prefixed `u64` histogram of at most `max` buckets.
fn read_buckets(buf: &mut impl Buf, max: usize, what: &str) -> Result<Vec<u64>, PirError> {
    if buf.remaining() < 2 {
        return Err(PirError::Wire(format!("truncated {what} length")));
    }
    let len = buf.get_u16() as usize;
    if len > max {
        return Err(PirError::Wire(format!("{what} of {len} buckets exceeds the {max} cap")));
    }
    if buf.remaining() < 8 * len {
        return Err(PirError::Wire(format!("truncated {what}")));
    }
    Ok((0..len).map(|_| buf.get_u64()).collect())
}

/// Serializes a stats reply: the request id it answers, then the report.
///
/// # Errors
/// Fails when a histogram exceeds [`MAX_STATS_BUCKETS`] buckets or the
/// report carries more than [`MAX_STATS_STAGES`] stages.
pub fn encode_stats_response(request_id: u64, report: &StatsReport) -> Result<Bytes, PirError> {
    if report.latency_buckets.len() > MAX_STATS_BUCKETS {
        return Err(PirError::InvalidParams(format!(
            "latency histogram of {} buckets exceeds the {MAX_STATS_BUCKETS} cap",
            report.latency_buckets.len()
        )));
    }
    if report.stages.len() > MAX_STATS_STAGES {
        return Err(PirError::InvalidParams(format!(
            "{} stages exceed the {MAX_STATS_STAGES} cap",
            report.stages.len()
        )));
    }
    for stage in &report.stages {
        if stage.buckets.len() > MAX_STATS_BUCKETS {
            return Err(PirError::InvalidParams(format!(
                "stage histogram of {} buckets exceeds the {MAX_STATS_BUCKETS} cap",
                stage.buckets.len()
            )));
        }
    }
    let mut buf = BytesMut::new();
    put_header(&mut buf, Tag::StatsResponse);
    buf.put_u64(request_id);
    for v in [
        report.queries,
        report.errors,
        report.batches,
        report.batch_query_sum,
        report.batches_multi,
        report.max_batch,
        report.queue_depth,
        report.queue_depth_max,
        report.update_batches,
        report.updates_applied,
        report.epoch,
        report.uptime_us,
        report.latency_sum_us,
        report.latency_max_us,
    ] {
        buf.put_u64(v);
    }
    write_buckets(&mut buf, &report.latency_buckets);
    buf.put_u16(report.stages.len() as u16);
    for stage in &report.stages {
        buf.put_u64(stage.count);
        buf.put_u64(stage.sum_us);
        buf.put_u64(stage.max_us);
        write_buckets(&mut buf, &stage.buckets);
    }
    for v in [
        report.residue_ntts,
        report.pointwise_macs,
        report.icrt_coeffs,
        report.auto_coeffs,
        report.scan_bytes,
        report.scan_ns,
        report.slow_queries,
        report.busy_rejections,
        report.session_evictions,
        report.timeouts,
        report.retries,
        report.reconnects,
        report.worker_panics,
        report.drained_jobs,
    ] {
        buf.put_u64(v);
    }
    Ok(buf.freeze())
}

/// Deserializes a stats reply into `(request_id, report)`.
///
/// # Errors
/// Fails on framing errors or oversized histograms/stage counts.
pub fn decode_stats_response(bytes: &Bytes) -> Result<(u64, StatsReport), PirError> {
    let mut buf = bytes.clone();
    check_header(&mut buf, Tag::StatsResponse)?;
    // Request id + the 14 fixed leading counters.
    if buf.remaining() < 8 * 15 {
        return Err(PirError::Wire("truncated stats counters".into()));
    }
    let request = buf.get_u64();
    let mut fixed = [0u64; 14];
    for v in &mut fixed {
        *v = buf.get_u64();
    }
    let latency_buckets = read_buckets(&mut buf, MAX_STATS_BUCKETS, "latency histogram")?;
    if buf.remaining() < 2 {
        return Err(PirError::Wire("truncated stage count".into()));
    }
    let stage_count = buf.get_u16() as usize;
    if stage_count > MAX_STATS_STAGES {
        return Err(PirError::Wire(format!(
            "{stage_count} stages exceed the {MAX_STATS_STAGES} cap"
        )));
    }
    let mut stages = Vec::with_capacity(stage_count);
    for _ in 0..stage_count {
        if buf.remaining() < 8 * 3 {
            return Err(PirError::Wire("truncated stage counters".into()));
        }
        let count = buf.get_u64();
        let sum_us = buf.get_u64();
        let max_us = buf.get_u64();
        let buckets = read_buckets(&mut buf, MAX_STATS_BUCKETS, "stage histogram")?;
        stages.push(StageReport { count, sum_us, max_us, buckets });
    }
    if buf.remaining() < 8 * 14 {
        return Err(PirError::Wire("truncated kernel counters".into()));
    }
    let mut trailing = [0u64; 14];
    for v in &mut trailing {
        *v = buf.get_u64();
    }
    check_drained(&buf)?;
    Ok((
        request,
        StatsReport {
            queries: fixed[0],
            errors: fixed[1],
            batches: fixed[2],
            batch_query_sum: fixed[3],
            batches_multi: fixed[4],
            max_batch: fixed[5],
            queue_depth: fixed[6],
            queue_depth_max: fixed[7],
            update_batches: fixed[8],
            updates_applied: fixed[9],
            epoch: fixed[10],
            uptime_us: fixed[11],
            latency_sum_us: fixed[12],
            latency_max_us: fixed[13],
            latency_buckets,
            stages,
            residue_ntts: trailing[0],
            pointwise_macs: trailing[1],
            icrt_coeffs: trailing[2],
            auto_coeffs: trailing[3],
            scan_bytes: trailing[4],
            scan_ns: trailing[5],
            slow_queries: trailing[6],
            busy_rejections: trailing[7],
            session_evictions: trailing[8],
            timeouts: trailing[9],
            retries: trailing[10],
            reconnects: trailing[11],
            worker_panics: trailing[12],
            drained_jobs: trailing[13],
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PirClient;
    use crate::db::Database;
    use crate::params::PirParams;
    use crate::server::PirServer;
    use rand::SeedableRng;

    #[test]
    fn query_roundtrip_preserves_answers() {
        let params = PirParams::toy();
        let he = params.he();
        let records: Vec<Vec<u8>> =
            (0..params.num_records()).map(|i| format!("wire {i}").into_bytes()).collect();
        let db = Database::from_records(&params, &records).expect("fits");
        let server = PirServer::new(&params, db).expect("geometry matches");
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(42)).expect("keygen");
        let query = client.query(11).expect("in range");
        // Over the wire and back.
        let encoded = encode_query(&query);
        let decoded = decode_query(he, &encoded).expect("well-formed");
        let r1 = server.answer(client.public_keys(), &query).expect("pipeline");
        let r2 = server.answer(client.public_keys(), &decoded).expect("pipeline");
        assert_eq!(r1, r2, "wire roundtrip changed the query");
        // Response over the wire.
        let resp_bytes = encode_response(&r1);
        let resp = decode_response(he, &resp_bytes).expect("well-formed");
        let plain = client.decode(&query, &resp).expect("decrypts");
        assert_eq!(&plain[..7], &records[11][..7]);
    }

    #[test]
    fn measured_sizes_match_model() {
        // The §VI-C communication model must agree with real encodings
        // to within the small framing overhead.
        let params = PirParams::toy();
        let he = params.he();
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(1)).expect("keygen");
        let query = client.query(0).expect("in range");
        let encoded = encode_query(&query);
        // Model counts packed residues (28-bit -> 3.5B); the wire uses
        // 4B words plus headers: ratio must stay below 1.25.
        let model = query.byte_len(he) as f64;
        let actual = encoded.len() as f64;
        let ratio = actual / model;
        assert!((1.0..1.25).contains(&ratio), "wire/model ratio {ratio:.3}");
    }

    #[test]
    fn corrupted_frames_rejected() {
        let params = PirParams::toy();
        let he = params.he();
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(2)).expect("keygen");
        let query = client.query(1).expect("in range");
        let good = encode_query(&query);
        // Truncation.
        let short = good.slice(..good.len() / 2);
        assert!(decode_query(he, &short).is_err());
        // Bad magic.
        let mut bad = BytesMut::from(&good[..]);
        bad[0] ^= 0xFF;
        assert!(decode_query(he, &bad.freeze()).is_err());
        // Out-of-range residue.
        let mut tampered = BytesMut::from(&good[..]);
        let idx = tampered.len() - 2;
        tampered[idx] = 0xFF;
        tampered[idx - 1] = 0xFF;
        tampered[idx - 2] = 0xFF;
        tampered[idx - 3] = 0xFF;
        assert!(decode_query(he, &tampered.freeze()).is_err());
    }

    #[test]
    fn wrong_version_and_tag_named_in_errors() {
        let params = PirParams::toy();
        let he = params.he();
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(5)).expect("keygen");
        let query = client.query(1).expect("in range");
        let good = encode_query(&query);
        // Version-1 framing (no version byte) must be rejected by name.
        let mut v1 = BytesMut::from(&good[..]);
        v1[4] = 1;
        let err = decode_query(he, &v1.freeze()).expect_err("old version").to_string();
        assert!(err.contains("version 1"), "unhelpful error: {err}");
        // Feeding a Query frame to the response decoder names both tags.
        let err = decode_response(he, &good).expect_err("wrong tag").to_string();
        assert!(err.contains("Response") && err.contains("Query"), "unhelpful error: {err}");
        assert_eq!(peek_tag(&good).expect("well-formed"), Tag::Query);
    }

    #[test]
    fn wrong_ring_rejected() {
        let params = PirParams::toy();
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(3)).expect("keygen");
        let query = client.query(1).expect("in range");
        let encoded = encode_query(&query);
        // Decode against a different ring.
        let other = ive_he::HeParams::new(
            ive_math::rns::RingContext::test_ring(128, 2),
            16,
            ive_math::gadget::Gadget::new(14, 4),
            4,
        )
        .expect("valid");
        assert!(decode_query(&other, &encoded).is_err());
    }

    #[test]
    fn client_keys_roundtrip_still_expand() {
        // The cached-key path: keys that crossed the wire must drive the
        // full pipeline to the same answer as the originals.
        let params = PirParams::toy();
        let he = params.he();
        let records: Vec<Vec<u8>> =
            (0..params.num_records()).map(|i| format!("key {i}").into_bytes()).collect();
        let db = Database::from_records(&params, &records).expect("fits");
        let server = PirServer::new(&params, db).expect("geometry matches");
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(6)).expect("keygen");
        let encoded = encode_client_keys(client.public_keys());
        let decoded = decode_client_keys(he, &encoded).expect("well-formed");
        let query = client.query(23).expect("in range");
        let r1 = server.answer(client.public_keys(), &query).expect("pipeline");
        let r2 = server.answer(&decoded, &query).expect("pipeline");
        assert_eq!(r1, r2, "wire roundtrip changed the keys");
        // The Hello frame carries the same body under its own tag.
        let hello = encode_hello(client.public_keys());
        assert_eq!(peek_tag(&hello).expect("well-formed"), Tag::Hello);
        let from_hello = decode_hello(he, &hello).expect("well-formed");
        assert_eq!(from_hello.subs_keys().len(), decoded.subs_keys().len());
    }

    #[test]
    fn session_frames_roundtrip() {
        let params = PirParams::toy();
        let he = params.he();
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(7)).expect("keygen");
        let query = client.query(9).expect("in range");
        let sq = encode_session_query(0xDEAD_BEEF, 17, &query);
        let (session, request, decoded) = decode_session_query(he, &sq).expect("well-formed");
        assert_eq!((session, request), (0xDEAD_BEEF, 17));
        assert_eq!(encode_query(&decoded), encode_query(&query));

        let welcome = encode_welcome(99);
        assert_eq!(decode_welcome(&welcome).expect("well-formed"), 99);

        let err = encode_error_frame(17, "unknown session 99");
        let (req, msg) = decode_error_frame(&err).expect("well-formed");
        assert_eq!(req, 17);
        assert_eq!(msg, "unknown session 99");
    }

    #[test]
    fn update_frames_roundtrip_and_validate() {
        let params = PirParams::toy();
        let updates = vec![
            RecordUpdate::put(3, b"new record".to_vec()),
            RecordUpdate::delete(9),
            RecordUpdate::put(63, vec![]),
        ];
        let frame = encode_update_rows(77, &updates).expect("within cap");
        assert_eq!(peek_tag(&frame).expect("well-formed"), Tag::UpdateRow);
        let (req, back) = decode_update_rows(&params, &frame).expect("own encoding decodes");
        assert_eq!(req, 77);
        assert_eq!(back, updates);
        // Out-of-range index rejected at decode, before any staging.
        let oob = encode_update_rows(1, &[RecordUpdate::delete(params.num_records())])
            .expect("within cap");
        let err = decode_update_rows(&params, &oob).expect_err("oob index").to_string();
        assert!(err.contains("out of range"), "unhelpful: {err}");
        // Oversized payload rejected by the declared capacity.
        let fat =
            encode_update_rows(1, &[RecordUpdate::put(0, vec![0; params.record_bytes() + 1])])
                .expect("within cap");
        let err = decode_update_rows(&params, &fat).expect_err("fat payload").to_string();
        assert!(err.contains("capacity"), "unhelpful: {err}");

        let ack = encode_update_ack(77, 4, 3);
        assert_eq!(peek_tag(&ack).expect("well-formed"), Tag::UpdateAck);
        assert_eq!(decode_update_ack(&ack).expect("well-formed"), (77, 4, 3));
    }

    #[test]
    fn subs_key_encoding_nonempty() {
        let params = PirParams::toy();
        let he = params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let sk = ive_he::SecretKey::generate(he, &mut rng);
        let key = ive_he::SubsKey::generate(he, &sk, 3, &mut rng);
        let bytes = encode_subs_key(&key);
        assert!(bytes.len() > 4 * he.gadget().ell() * he.n());
    }

    #[test]
    fn ks_frames_roundtrip_preserve_answers() {
        use crate::kspir::{KsPirClient, KsPirServer};
        let params = KsPirParams::toy();
        let he = params.he();
        let scalars: Vec<u64> =
            (0..params.num_scalars() as u64).map(|i| (i * 31 + 5) % he.p()).collect();
        let server = KsPirServer::new(params.clone(), &scalars).expect("packs");
        let mut client =
            KsPirClient::new(&params, rand::rngs::StdRng::seed_from_u64(11)).expect("keygen");

        // Hello: trace keys that crossed the wire drive the same answer.
        let hello = encode_ks_hello(client.public_keys());
        assert_eq!(peek_tag(&hello).expect("well-formed"), Tag::KsHello);
        let keys = decode_ks_hello(he, &hello).expect("well-formed");
        let query = client.query(137).expect("in range");
        let r1 = server.answer(client.public_keys(), &query).expect("trace");
        let r2 = server.answer(&keys, &query).expect("trace");
        assert_eq!(r1, r2, "wire roundtrip changed the keys");
        // A key count other than log N is rejected before caching.
        let short = KsPirKeys::from_parts(keys.trace_keys()[..3].to_vec());
        let err = decode_ks_hello(he, &encode_ks_hello(&short)).expect_err("short").to_string();
        assert!(err.contains("trace keys"), "unhelpful: {err}");

        // Welcome: the schema survives by seed, geometry is revalidated.
        let schema = KvSchema::new(params.clone(), 0xFEED).expect("valid");
        let welcome = encode_ks_welcome(42, &schema);
        assert_eq!(peek_tag(&welcome).expect("well-formed"), Tag::KsWelcome);
        let (session, back) = decode_ks_welcome(&params, &welcome).expect("well-formed");
        assert_eq!(session, 42);
        assert_eq!((back.seed(), back.buckets()), (0xFEED, schema.buckets()));
        let mut lying = BytesMut::from(&welcome[..]);
        let off = welcome.len() - 2; // group-slot field
        lying[off..].copy_from_slice(&[0xFF, 0xFF]);
        assert!(decode_ks_welcome(&params, &lying.freeze()).is_err());

        // Query and response frames round-trip to the same plaintext.
        let kq = encode_ks_query(42, 7, &query);
        assert_eq!(peek_tag(&kq).expect("well-formed"), Tag::KsQuery);
        let (s, r, decoded) = decode_ks_query(&params, &kq).expect("well-formed");
        assert_eq!((s, r), (42, 7));
        let r3 = server.answer(&keys, &decoded).expect("trace");
        assert_eq!(r1, r3, "wire roundtrip changed the query");
        let resp = encode_ks_response(7, &r1);
        assert_eq!(peek_tag(&resp).expect("well-formed"), Tag::KsResponse);
        let (req, ct) = decode_ks_response(he, &resp).expect("well-formed");
        assert_eq!(req, 7);
        assert_eq!(client.decode(&ct).expect("decrypts"), scalars[137]);
    }

    #[test]
    fn compressed_response_roundtrip_and_validation() {
        let params = PirParams::toy();
        let he = params.he();
        let records: Vec<Vec<u8>> =
            (0..params.num_records()).map(|i| format!("switch {i}").into_bytes()).collect();
        let db = Database::from_records(&params, &records).expect("fits");
        let server = PirServer::new(&params, db).expect("geometry matches");
        let mut client =
            PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(13)).expect("keygen");
        let query = client.query(29).expect("in range");
        let full = server.answer(client.public_keys(), &query).expect("pipeline");
        let switched = ive_he::modswitch::switch_to_first_prime(he, &full).expect("switchable");

        let frame = encode_compressed_response(3, &switched);
        assert_eq!(peek_tag(&frame).expect("well-formed"), Tag::CompressedResponse);
        // The dropped primes must show up as real traffic savings.
        assert!(frame.len() < encode_response(&full).len());
        let (req, back) = decode_compressed_response(he, &frame).expect("well-formed");
        assert_eq!(req, 3);
        assert_eq!((back.primes, &back.a, &back.b), (switched.primes, &switched.a, &switched.b));
        let plain = client.decode_compressed(&query, &back).expect("decrypts");
        assert_eq!(&plain[..9], &records[29][..9]);

        // Truncation, zero primes, and out-of-range residues are rejected.
        assert!(decode_compressed_response(he, &frame.slice(..frame.len() / 2)).is_err());
        let mut zeroed = BytesMut::from(&frame[..]);
        zeroed[14..16].copy_from_slice(&[0, 0]);
        assert!(decode_compressed_response(he, &zeroed.freeze()).is_err());
        let mut hot = BytesMut::from(&frame[..]);
        hot[20..24].copy_from_slice(&[0xFF; 4]);
        assert!(decode_compressed_response(he, &hot.freeze()).is_err());
    }

    #[test]
    fn kv_update_frames_roundtrip_and_validate() {
        let put = encode_kv_update(5, b"alice", Some(99)).expect("legal");
        assert_eq!(peek_tag(&put).expect("well-formed"), Tag::KvUpdate);
        assert_eq!(decode_kv_update(&put).expect("well-formed"), (5, b"alice".to_vec(), Some(99)));
        let del = encode_kv_update(6, b"bob", None).expect("legal");
        assert_eq!(decode_kv_update(&del).expect("well-formed"), (6, b"bob".to_vec(), None));

        // Illegal keys never leave the encoder.
        assert!(encode_kv_update(0, b"", Some(1)).is_err());
        assert!(encode_kv_update(0, &vec![0u8; MAX_KV_KEY_BYTES + 1], Some(1)).is_err());
        // Truncation and a forged zero-length key are rejected at decode.
        assert!(decode_kv_update(&put.slice(..put.len() - 1)).is_err());
        let mut empty = BytesMut::from(&del[..]);
        let off = del.len() - 2 - b"bob".len();
        empty[off..off + 2].copy_from_slice(&[0, 0]);
        let err = decode_kv_update(&empty.freeze().slice(..off + 2)).expect_err("empty key");
        assert!(err.to_string().contains("empty"), "unhelpful: {err}");
    }

    #[test]
    fn stats_frames_roundtrip_and_validate() {
        let req = encode_get_stats(77);
        assert_eq!(peek_tag(&req).expect("well-formed"), Tag::GetStats);
        assert_eq!(decode_get_stats(&req).expect("well-formed"), 77);
        assert!(decode_get_stats(&req.slice(..req.len() - 1)).is_err());

        let report = StatsReport {
            queries: 1000,
            errors: 3,
            batches: 400,
            batch_query_sum: 1000,
            batches_multi: 120,
            max_batch: 8,
            queue_depth: 2,
            queue_depth_max: 17,
            update_batches: 5,
            updates_applied: 9,
            epoch: 5,
            uptime_us: 60_000_000,
            latency_sum_us: 4_200_000,
            latency_max_us: 81_000,
            latency_buckets: vec![0, 0, 0, 5, 900, 90, 5],
            stages: vec![
                StageReport { count: 1000, sum_us: 900_000, max_us: 4000, buckets: vec![0, 1000] },
                StageReport::default(),
            ],
            residue_ntts: 123_456,
            pointwise_macs: 9_876_543,
            icrt_coeffs: 42,
            auto_coeffs: 7,
            scan_bytes: 1 << 30,
            scan_ns: 1_000_000_000,
            slow_queries: 11,
            busy_rejections: 23,
            session_evictions: 31,
            timeouts: 2,
            retries: 6,
            reconnects: 4,
            worker_panics: 1,
            drained_jobs: 13,
        };
        let frame = encode_stats_response(8, &report).expect("legal");
        assert_eq!(peek_tag(&frame).expect("well-formed"), Tag::StatsResponse);
        let (rid, back) = decode_stats_response(&frame).expect("well-formed");
        assert_eq!(rid, 8);
        assert_eq!(back, report, "stats report must survive the wire bit-exactly");

        // Oversized histograms never leave the encoder and are rejected
        // at decode when forged.
        let fat = StatsReport {
            latency_buckets: vec![0; MAX_STATS_BUCKETS + 1],
            ..StatsReport::default()
        };
        assert!(encode_stats_response(0, &fat).is_err());
        let crowded = StatsReport {
            stages: vec![StageReport::default(); MAX_STATS_STAGES + 1],
            ..StatsReport::default()
        };
        assert!(encode_stats_response(0, &crowded).is_err());
        for cut in [5, 20, frame.len() / 2, frame.len() - 1] {
            assert!(decode_stats_response(&frame.slice(..cut)).is_err(), "cut at {cut}");
        }
        // A forged stage count past the cap is rejected before any
        // allocation-by-attacker-length.
        let mut forged = BytesMut::from(&frame[..]);
        let stage_count_off = 6 + 8 * 15 + 2 + 8 * report.latency_buckets.len();
        forged[stage_count_off..stage_count_off + 2].copy_from_slice(&[0xFF, 0xFF]);
        assert!(decode_stats_response(&forged.freeze()).is_err());
    }
}
