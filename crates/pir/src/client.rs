//! The PIR client: key generation, query construction, response decoding.

use rand::Rng;

use ive_he::{BfvCiphertext, HeParams, Plaintext, RgswCiphertext, SecretKey, SubsKey};
use ive_math::wide;

use crate::db::plaintext_to_bytes;
use crate::expand::expansion_exponents;
use crate::params::PirParams;
use crate::PirError;

/// The client-specific public material held by the server: one `evk_r` per
/// `ExpandQuery` depth (§II-A — "up to log N evks in total").
#[derive(Debug, Clone)]
pub struct ClientKeys {
    subs: Vec<SubsKey>,
}

impl ClientKeys {
    /// Reassembles the key set from its parts (wire deserialization).
    pub fn from_subs_keys(subs: Vec<SubsKey>) -> Self {
        ClientKeys { subs }
    }

    /// The expansion keys, ordered by tree depth.
    #[inline]
    pub fn subs_keys(&self) -> &[SubsKey] {
        &self.subs
    }

    /// Total serialized size in the packed hardware layout — the
    /// client-specific data whose bandwidth demand motivates IVE's
    /// scratchpad (§III-B).
    pub fn byte_len(&self, he: &HeParams) -> usize {
        self.subs.len() * he.evk_bytes()
    }
}

/// A PIR query: the packed BFV ciphertext (expanded server-side into the
/// `D0` one-hot ciphertexts) plus `d` RGSW selection bits for `ColTor`.
///
/// The RGSW ciphertexts are uploaded directly (Respire-style, §II-C "we
/// need only one RGSW ciphertext directly encrypting j*" per binary
/// dimension); DESIGN.md documents this substitution for the packed
/// BFV→RGSW conversion.
#[derive(Debug, Clone)]
pub struct PirQuery {
    packed: BfvCiphertext,
    row_bits: Vec<RgswCiphertext>,
}

impl PirQuery {
    /// Reassembles a query from its parts (wire deserialization).
    pub fn from_parts(packed: BfvCiphertext, row_bits: Vec<RgswCiphertext>) -> Self {
        PirQuery { packed, row_bits }
    }

    /// The packed first-dimension ciphertext.
    #[inline]
    pub fn packed(&self) -> &BfvCiphertext {
        &self.packed
    }

    /// The RGSW row-selection bits, LSB first.
    #[inline]
    pub fn row_bits(&self) -> &[RgswCiphertext] {
        &self.row_bits
    }

    /// Serialized size in the packed hardware layout (a few MB for Table I
    /// parameters — the per-query PCIe payload of §VI-C).
    pub fn byte_len(&self, he: &HeParams) -> usize {
        he.ct_bytes() + self.row_bits.len() * he.rgsw_bytes()
    }
}

/// A PIR client owning a secret key.
#[derive(Debug)]
pub struct PirClient<R: Rng> {
    params: PirParams,
    sk: SecretKey,
    keys: ClientKeys,
    rng: R,
}

impl<R: Rng> PirClient<R> {
    /// Generates a fresh secret key and the expansion keys for the given
    /// geometry.
    ///
    /// # Errors
    /// Currently infallible for valid [`PirParams`]; returns `Result` for
    /// forward compatibility with externally supplied randomness.
    pub fn new(params: &PirParams, mut rng: R) -> Result<Self, PirError> {
        let he = params.he();
        let sk = SecretKey::generate(he, &mut rng);
        let subs = expansion_exponents(he.n(), params.log_d0())
            .into_iter()
            .map(|r| SubsKey::generate(he, &sk, r, &mut rng))
            .collect();
        Ok(PirClient { params: params.clone(), sk, keys: ClientKeys { subs }, rng })
    }

    /// The public evaluation keys to register with the server.
    #[inline]
    pub fn public_keys(&self) -> &ClientKeys {
        &self.keys
    }

    /// The scheme parameters.
    #[inline]
    pub fn params(&self) -> &PirParams {
        &self.params
    }

    /// Builds the query for record `index`.
    ///
    /// # Errors
    /// Fails when `index` is out of range.
    pub fn query(&mut self, index: usize) -> Result<PirQuery, PirError> {
        if index >= self.params.num_records() {
            return Err(PirError::IndexOutOfRange { index, records: self.params.num_records() });
        }
        let he = self.params.he();
        let (row, col) = self.params.split_index(index);

        // Packed one-hot X^{col}, pre-scaled by Δ·2^{-log D0} mod Q so the
        // doubling per expansion level cancels (§II-A).
        let m = Plaintext::monomial(he, col, 1)?;
        let q = he.q_big();
        let inv = he.inv_two_pow(self.params.log_d0());
        let (hi, lo) = wide::mul_u128(he.delta(), inv);
        let scale = wide::div_rem_wide(hi, lo, q).1;
        let packed = BfvCiphertext::encrypt_scaled(he, &self.sk, &m, scale, &mut self.rng);

        // RGSW bits of the row index, LSB first (one per binary dimension).
        let row_bits = (0..self.params.dims())
            .map(|t| {
                let bit = (row >> t) & 1 == 1;
                RgswCiphertext::encrypt_bit(he, &self.sk, bit, &mut self.rng)
            })
            .collect();
        Ok(PirQuery { packed, row_bits })
    }

    /// Decrypts a server response into the padded record payload
    /// ([`PirParams::record_bytes`] bytes).
    ///
    /// # Errors
    /// Currently infallible; kept fallible for API stability.
    pub fn decode(&self, _query: &PirQuery, response: &BfvCiphertext) -> Result<Vec<u8>, PirError> {
        let he = self.params.he();
        let pt = response.decrypt(he, &self.sk);
        Ok(plaintext_to_bytes(he, &pt))
    }

    /// Decodes a modulus-switched (compressed) response.
    ///
    /// # Errors
    /// Currently infallible; kept fallible for API stability.
    pub fn decode_compressed(
        &self,
        _query: &PirQuery,
        response: &ive_he::modswitch::SwitchedCiphertext,
    ) -> Result<Vec<u8>, PirError> {
        let he = self.params.he();
        let pt = ive_he::modswitch::decrypt_switched(he, &self.sk, response);
        Ok(plaintext_to_bytes(he, &pt))
    }

    /// The secret key (tests and noise diagnostics only).
    #[doc(hidden)]
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn query_shapes() {
        let params = PirParams::toy();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(61)).unwrap();
        let q = client.query(13).unwrap();
        assert_eq!(q.row_bits().len(), params.dims() as usize);
        assert_eq!(client.public_keys().subs_keys().len(), params.log_d0() as usize);
        let he = params.he();
        assert_eq!(q.byte_len(he), he.ct_bytes() + params.dims() as usize * he.rgsw_bytes());
        assert_eq!(client.public_keys().byte_len(he), params.log_d0() as usize * he.evk_bytes());
    }

    #[test]
    fn out_of_range_query_rejected() {
        let params = PirParams::toy();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(62)).unwrap();
        let err = client.query(params.num_records()).unwrap_err();
        assert!(matches!(err, PirError::IndexOutOfRange { .. }));
    }
}
