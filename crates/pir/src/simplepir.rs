//! SimplePIR (Henzinger et al., USENIX Security '23) — the Regev-matrix
//! baseline of Table IV.
//!
//! The database is a `m1 × m2` matrix over `Z_p`. Offline, the server
//! publishes the hint `H = DB · A` for a public LWE matrix
//! `A ∈ Z_q^{m2 × n}`. Online, the client sends
//! `qu = A·s + e + Δ·u_{col}` and the server answers `ans = DB · qu` —
//! one pass of modular GEMV over the whole database (§VI-D: "SimplePIR
//! mainly performs modular GEMMs"). All `Z_q` arithmetic is word-exact
//! with `q = 2^32` (wrapping `u32`).

use rand::Rng;

use crate::PirError;

/// SimplePIR parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplePirParams {
    /// LWE secret dimension `n` (the paper's reference uses `2^10`).
    pub n: usize,
    /// Plaintext modulus `p` (power of two, `<= 2^16`).
    pub p: u32,
    /// Database rows `m1`.
    pub m1: usize,
    /// Database columns `m2`.
    pub m2: usize,
}

impl SimplePirParams {
    /// A near-square layout for `records` entries of `Z_p`.
    pub fn for_records(records: usize, n: usize, p: u32) -> Self {
        let m2 = (records as f64).sqrt().ceil() as usize;
        let m1 = records.div_ceil(m2);
        SimplePirParams { n, p, m1, m2 }
    }

    /// Small parameters for tests.
    pub fn toy() -> Self {
        SimplePirParams { n: 64, p: 1 << 8, m1: 16, m2: 16 }
    }

    /// The scaling factor `Δ = q / p` with `q = 2^32`.
    #[inline]
    pub fn delta(&self) -> u32 {
        debug_assert!(self.p.is_power_of_two());
        (1u64 << 32).wrapping_div(self.p as u64) as u32
    }

    /// Per-query upload bytes (`m2` words of `Z_q`).
    pub fn query_bytes(&self) -> usize {
        self.m2 * 4
    }

    /// Per-query download bytes (`m1` words of `Z_q`).
    pub fn answer_bytes(&self) -> usize {
        self.m1 * 4
    }

    /// Offline hint bytes (`m1 × n` words).
    pub fn hint_bytes(&self) -> usize {
        self.m1 * self.n * 4
    }
}

/// The SimplePIR server: database matrix, public `A`, and hint.
#[derive(Debug, Clone)]
pub struct SimplePirServer {
    params: SimplePirParams,
    /// `m1 × m2` row-major database over `Z_p`.
    db: Vec<u32>,
    /// `m2 × n` row-major public LWE matrix.
    a: Vec<u32>,
    /// `m1 × n` row-major hint `DB · A`.
    hint: Vec<u32>,
}

impl SimplePirServer {
    /// Builds the server from `Z_p` entries (row-major, padded with zeros).
    ///
    /// # Errors
    /// Fails when an entry is `>= p` or there are too many entries.
    pub fn new<R: Rng + ?Sized>(
        params: SimplePirParams,
        entries: &[u32],
        rng: &mut R,
    ) -> Result<Self, PirError> {
        let cells = params.m1 * params.m2;
        if entries.len() > cells {
            return Err(PirError::TooManyRecords { got: entries.len(), capacity: cells });
        }
        if let Some(&v) = entries.iter().find(|&&v| v >= params.p) {
            return Err(PirError::InvalidParams(format!(
                "entry {v} exceeds plaintext modulus {}",
                params.p
            )));
        }
        let mut db = entries.to_vec();
        db.resize(cells, 0);
        let a: Vec<u32> = (0..params.m2 * params.n).map(|_| rng.gen()).collect();
        // Hint: H = DB · A over Z_q (wrapping u32).
        let mut hint = vec![0u32; params.m1 * params.n];
        for r in 0..params.m1 {
            for c in 0..params.m2 {
                let d = db[r * params.m2 + c];
                if d == 0 {
                    continue;
                }
                let a_row = &a[c * params.n..(c + 1) * params.n];
                let h_row = &mut hint[r * params.n..(r + 1) * params.n];
                for (h, &av) in h_row.iter_mut().zip(a_row) {
                    *h = h.wrapping_add(d.wrapping_mul(av));
                }
            }
        }
        Ok(SimplePirServer { params, db, a, hint })
    }

    /// The parameters.
    #[inline]
    pub fn params(&self) -> &SimplePirParams {
        &self.params
    }

    /// The public matrix `A` (downloaded once by every client).
    #[inline]
    pub fn public_a(&self) -> &[u32] {
        &self.a
    }

    /// The offline hint `DB · A` (downloaded once by every client).
    #[inline]
    pub fn hint(&self) -> &[u32] {
        &self.hint
    }

    /// Online answer: `ans = DB · qu` (the full-database GEMV scan).
    ///
    /// # Errors
    /// Fails when the query length differs from `m2`.
    pub fn answer(&self, query: &[u32]) -> Result<Vec<u32>, PirError> {
        if query.len() != self.params.m2 {
            return Err(PirError::InvalidParams(format!(
                "query length {} != m2 = {}",
                query.len(),
                self.params.m2
            )));
        }
        let mut ans = vec![0u32; self.params.m1];
        for (r, slot) in ans.iter_mut().enumerate() {
            let row = &self.db[r * self.params.m2..(r + 1) * self.params.m2];
            let mut acc = 0u32;
            for (&d, &qv) in row.iter().zip(query) {
                acc = acc.wrapping_add(d.wrapping_mul(qv));
            }
            *slot = acc;
        }
        Ok(ans)
    }
}

/// The SimplePIR client.
#[derive(Debug)]
pub struct SimplePirClient {
    params: SimplePirParams,
    secret: Vec<u32>,
}

impl SimplePirClient {
    /// Samples a fresh LWE secret.
    pub fn new<R: Rng + ?Sized>(params: SimplePirParams, rng: &mut R) -> Self {
        let secret = (0..params.n).map(|_| rng.gen()).collect();
        SimplePirClient { params, secret }
    }

    /// Builds a query for column `col`: `qu = A·s + e + Δ·u_col`.
    ///
    /// # Errors
    /// Fails when `col >= m2`.
    pub fn query<R: Rng + ?Sized>(
        &self,
        a: &[u32],
        col: usize,
        rng: &mut R,
    ) -> Result<Vec<u32>, PirError> {
        if col >= self.params.m2 {
            return Err(PirError::IndexOutOfRange { index: col, records: self.params.m2 });
        }
        let mut qu = vec![0u32; self.params.m2];
        for c in 0..self.params.m2 {
            let a_row = &a[c * self.params.n..(c + 1) * self.params.n];
            let mut acc = 0u32;
            for (&av, &sv) in a_row.iter().zip(&self.secret) {
                acc = acc.wrapping_add(av.wrapping_mul(sv));
            }
            // Centered-binomial noise (η = 4).
            let noise: i32 = (0..4).map(|_| rng.gen_range(0..2) - rng.gen_range(0..2i32)).sum();
            qu[c] = acc.wrapping_add(noise as u32);
        }
        qu[col] = qu[col].wrapping_add(self.params.delta());
        Ok(qu)
    }

    /// Recovers `DB[row][col]` from the answer using the hint.
    ///
    /// # Errors
    /// Fails when shapes mismatch.
    pub fn decode(&self, hint: &[u32], ans: &[u32], row: usize) -> Result<u32, PirError> {
        if row >= self.params.m1 || ans.len() != self.params.m1 {
            return Err(PirError::IndexOutOfRange { index: row, records: self.params.m1 });
        }
        let h_row = &hint[row * self.params.n..(row + 1) * self.params.n];
        let mut hs = 0u32;
        for (&hv, &sv) in h_row.iter().zip(&self.secret) {
            hs = hs.wrapping_add(hv.wrapping_mul(sv));
        }
        let noisy = ans[row].wrapping_sub(hs); // Δ·value + small noise
        let delta = self.params.delta();
        // Round to the nearest multiple of Δ.
        let value = ((noisy as u64 + delta as u64 / 2) / delta as u64) as u32;
        Ok(value % self.params.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn retrieves_every_cell() {
        let params = SimplePirParams::toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        let entries: Vec<u32> =
            (0..params.m1 * params.m2).map(|i| (i as u32 * 7 + 3) % params.p).collect();
        let server = SimplePirServer::new(params, &entries, &mut rng).unwrap();
        let client = SimplePirClient::new(params, &mut rng);
        for col in [0usize, 3, params.m2 - 1] {
            let qu = client.query(server.public_a(), col, &mut rng).unwrap();
            let ans = server.answer(&qu).unwrap();
            for row in 0..params.m1 {
                let got = client.decode(server.hint(), &ans, row).unwrap();
                assert_eq!(got, entries[row * params.m2 + col], "({row},{col})");
            }
        }
    }

    #[test]
    fn near_square_layout() {
        let p = SimplePirParams::for_records(1000, 64, 1 << 8);
        assert!(p.m1 * p.m2 >= 1000);
        assert!(p.m1.abs_diff(p.m2) <= 2);
    }

    #[test]
    fn rejects_out_of_range_entries() {
        let params = SimplePirParams::toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(82);
        assert!(SimplePirServer::new(params, &[params.p], &mut rng).is_err());
    }

    #[test]
    fn communication_sizes() {
        let params = SimplePirParams::for_records(1 << 20, 1024, 1 << 8);
        // Query/answer are √D-sized — the SimplePIR trade-off.
        assert!(params.query_bytes() < 1 << 14);
        assert!(params.answer_bytes() < 1 << 14);
        assert!(params.hint_bytes() > params.query_bytes());
    }
}
