//! A KsPIR-style single-server scheme (Table IV's second baseline).
//!
//! KsPIR (Luo–Liu–Wang, CCS '24) avoids oblivious query expansion by
//! resolving the within-polynomial dimension with *key-switching*: the
//! server multiplies the query by each database chunk and applies the
//! homomorphic **trace** — `log N` automorphism + key-switch rounds that
//! project a ciphertext onto its constant coefficient (§VI-D: "KsPIR ...
//! relies on automorphism, key-switching, and external products"). The
//! across-chunk dimension is resolved with the same RGSW tournament as
//! OnionPIR.
//!
//! The client encrypts `X^{-pos}` pre-scaled by `Δ·N^{-1} mod Q`, so the
//! `×2` growth of every trace round cancels exactly — the same trick the
//! main scheme uses for `ExpandQuery`.

use rand::Rng;

use ive_he::modswitch::{decrypt_switched, SwitchedCiphertext};
use ive_he::{BfvCiphertext, HeParams, Plaintext, RgswCiphertext, SecretKey, SubsKey};
use ive_math::rns::RnsPoly;
use ive_math::wide;

use crate::coltor::{col_tor, TournamentOrder};
use crate::expand::expansion_exponents;
use crate::PirError;

/// KsPIR-style geometry: `2^log_chunks` database polynomials, each packing
/// `N` scalars of `Z_P`.
#[derive(Debug, Clone)]
pub struct KsPirParams {
    he: HeParams,
    log_chunks: u32,
}

impl KsPirParams {
    /// Builds a geometry with `2^log_chunks` chunks.
    pub fn new(he: HeParams, log_chunks: u32) -> Self {
        KsPirParams { he, log_chunks }
    }

    /// Small parameters for tests (4 chunks of `N = 256` scalars).
    pub fn toy() -> Self {
        KsPirParams::new(HeParams::toy(), 2)
    }

    /// The HE parameters.
    #[inline]
    pub fn he(&self) -> &HeParams {
        &self.he
    }

    /// Number of chunks.
    #[inline]
    pub fn chunks(&self) -> usize {
        1 << self.log_chunks
    }

    /// Binary across-chunk dimensions.
    #[inline]
    pub fn log_chunks(&self) -> u32 {
        self.log_chunks
    }

    /// Total scalar capacity.
    #[inline]
    pub fn num_scalars(&self) -> usize {
        self.chunks() * self.he.n()
    }

    /// Splits a scalar index into `(chunk, position)`.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn split_index(&self, index: usize) -> (usize, usize) {
        assert!(index < self.num_scalars());
        (index / self.he.n(), index % self.he.n())
    }
}

/// Client-held keys: trace keys (`log N` evks) shared with the server.
#[derive(Debug, Clone)]
pub struct KsPirKeys {
    trace: Vec<SubsKey>,
}

impl KsPirKeys {
    /// Reassembles a key set from its trace keys (the wire decoder's
    /// constructor; pair with [`KsPirKeys::trace_keys`]).
    pub fn from_parts(trace: Vec<SubsKey>) -> Self {
        KsPirKeys { trace }
    }

    /// The trace evaluation keys, ordered by round.
    #[inline]
    pub fn trace_keys(&self) -> &[SubsKey] {
        &self.trace
    }
}

/// A KsPIR-style query.
#[derive(Debug, Clone)]
pub struct KsPirQuery {
    ct: BfvCiphertext,
    chunk_bits: Vec<RgswCiphertext>,
}

impl KsPirQuery {
    /// Reassembles a query from its parts (the wire decoder's
    /// constructor).
    pub fn from_parts(ct: BfvCiphertext, chunk_bits: Vec<RgswCiphertext>) -> Self {
        KsPirQuery { ct, chunk_bits }
    }

    /// The pre-scaled monomial ciphertext.
    #[inline]
    pub fn ct(&self) -> &BfvCiphertext {
        &self.ct
    }

    /// The RGSW chunk-selection bits, LSB first.
    #[inline]
    pub fn chunk_bits(&self) -> &[RgswCiphertext] {
        &self.chunk_bits
    }
}

/// The server: preprocessed chunk polynomials, plus the raw scalars they
/// were packed from so a mutation can re-pack only the touched chunks.
#[derive(Debug)]
pub struct KsPirServer {
    params: KsPirParams,
    scalars: Vec<u64>,
    chunk_polys: Vec<RnsPoly>,
}

impl KsPirServer {
    /// Packs `Z_P` scalars into chunk polynomials (padded with zeros).
    ///
    /// # Errors
    /// Fails when a scalar is `>= P` or too many are supplied.
    pub fn new(params: KsPirParams, scalars: &[u64]) -> Result<Self, PirError> {
        if scalars.len() > params.num_scalars() {
            return Err(PirError::TooManyRecords {
                got: scalars.len(),
                capacity: params.num_scalars(),
            });
        }
        let he = params.he();
        let n = he.n();
        let mut padded = scalars.to_vec();
        padded.resize(params.num_scalars(), 0);
        let mut chunk_polys = Vec::with_capacity(params.chunks());
        for c in 0..params.chunks() {
            chunk_polys.push(pack_chunk(he, &padded[c * n..(c + 1) * n])?);
        }
        Ok(KsPirServer { params, scalars: padded, chunk_polys })
    }

    /// The geometry.
    #[inline]
    pub fn params(&self) -> &KsPirParams {
        &self.params
    }

    /// The raw scalars the chunk polynomials were packed from (padded to
    /// [`KsPirParams::num_scalars`]).
    #[inline]
    pub fn scalars(&self) -> &[u64] {
        &self.scalars
    }

    /// A new server with the given `(slot, value)` writes applied,
    /// re-packing **only the touched chunks** — the epoch-swap mutation
    /// path (O(touched chunks) NTTs, not O(database)). Writes apply in
    /// order, so a later write to the same slot wins.
    ///
    /// # Errors
    /// Fails on an out-of-range slot or a value `>= P`; nothing is
    /// applied on error.
    pub fn with_updates(&self, writes: &[(usize, u64)]) -> Result<KsPirServer, PirError> {
        let he = self.params.he();
        let n = he.n();
        for &(slot, value) in writes {
            if slot >= self.scalars.len() {
                return Err(PirError::IndexOutOfRange { index: slot, records: self.scalars.len() });
            }
            if value >= he.p() {
                return Err(PirError::InvalidParams(format!(
                    "scalar {value} is not below the plaintext modulus {}",
                    he.p()
                )));
            }
        }
        let mut scalars = self.scalars.clone();
        let mut touched: Vec<usize> = Vec::new();
        for &(slot, value) in writes {
            scalars[slot] = value;
            let chunk = slot / n;
            if !touched.contains(&chunk) {
                touched.push(chunk);
            }
        }
        let mut chunk_polys = self.chunk_polys.clone();
        for &c in &touched {
            chunk_polys[c] = pack_chunk(he, &scalars[c * n..(c + 1) * n])?;
        }
        Ok(KsPirServer { params: self.params.clone(), scalars, chunk_polys })
    }

    /// Answers a query: per chunk, plaintext product + trace; then the
    /// RGSW tournament across chunks.
    ///
    /// # Errors
    /// Fails when keys or selection bits are missing.
    pub fn answer(&self, keys: &KsPirKeys, query: &KsPirQuery) -> Result<BfvCiphertext, PirError> {
        let he = self.params.he();
        let rounds = ive_math::log2_exact(he.n())?;
        if keys.trace.len() < rounds as usize {
            return Err(PirError::MissingKeys { got: keys.trace.len(), need: rounds as usize });
        }
        let mut per_chunk = Vec::with_capacity(self.chunk_polys.len());
        for poly in &self.chunk_polys {
            let mut ct = query.ct.clone();
            ct.mul_plain_assign(poly)?;
            per_chunk.push(trace(he, ct, &keys.trace)?);
        }
        col_tor(he, per_chunk, &query.chunk_bits, TournamentOrder::Dfs)
    }
}

/// Packs one chunk of `N` scalars into an NTT-form plaintext polynomial.
fn pack_chunk(he: &HeParams, vals: &[u64]) -> Result<RnsPoly, PirError> {
    let pt =
        Plaintext::new(he, vals.to_vec()).map_err(|e| PirError::InvalidParams(e.to_string()))?;
    Ok(pt.to_ntt_poly(he))
}

/// Homomorphic trace: `log N` rounds of `ct ← ct + Subs(ct, N/2^j + 1)`,
/// projecting onto the constant coefficient (scaled by `N`).
fn trace(
    he: &HeParams,
    mut ct: BfvCiphertext,
    keys: &[SubsKey],
) -> Result<BfvCiphertext, PirError> {
    for key in keys {
        let sub = key.apply(he, &ct)?;
        ct.add_assign(&sub)?;
    }
    Ok(ct)
}

/// The KsPIR-style client.
#[derive(Debug)]
pub struct KsPirClient<R: Rng> {
    params: KsPirParams,
    sk: SecretKey,
    keys: KsPirKeys,
    rng: R,
}

impl<R: Rng> KsPirClient<R> {
    /// Generates secret and trace keys.
    ///
    /// # Errors
    /// Infallible for valid parameters; fallible for API stability.
    pub fn new(params: &KsPirParams, mut rng: R) -> Result<Self, PirError> {
        let he = params.he();
        let sk = SecretKey::generate(he, &mut rng);
        let rounds = ive_math::log2_exact(he.n())?;
        let trace = expansion_exponents(he.n(), rounds)
            .into_iter()
            .map(|r| SubsKey::generate(he, &sk, r, &mut rng))
            .collect();
        Ok(KsPirClient { params: params.clone(), sk, keys: KsPirKeys { trace }, rng })
    }

    /// The public trace keys.
    #[inline]
    pub fn public_keys(&self) -> &KsPirKeys {
        &self.keys
    }

    /// Builds a query for scalar `index`.
    ///
    /// # Errors
    /// Fails when out of range.
    pub fn query(&mut self, index: usize) -> Result<KsPirQuery, PirError> {
        if index >= self.params.num_scalars() {
            return Err(PirError::IndexOutOfRange { index, records: self.params.num_scalars() });
        }
        let he = self.params.he();
        let (chunk, pos) = self.params.split_index(index);
        let n = he.n();
        let q = he.q_big();
        let rounds = ive_math::log2_exact(n)? as u32;
        // Scale Δ·N^{-1} mod Q; message X^{-pos} = −X^{N−pos} realized by
        // negating the scale for pos > 0.
        let inv_n = he.inv_two_pow(rounds);
        let (hi, lo) = wide::mul_u128(he.delta(), inv_n);
        let mut scale = wide::div_rem_wide(hi, lo, q).1;
        let degree = if pos == 0 {
            0
        } else {
            scale = q - scale;
            n - pos
        };
        let m = Plaintext::monomial(he, degree, 1)?;
        let ct = BfvCiphertext::encrypt_scaled(he, &self.sk, &m, scale, &mut self.rng);
        let chunk_bits = (0..self.params.log_chunks())
            .map(|t| {
                let bit = (chunk >> t) & 1 == 1;
                RgswCiphertext::encrypt_bit(he, &self.sk, bit, &mut self.rng)
            })
            .collect();
        Ok(KsPirQuery { ct, chunk_bits })
    }

    /// Decodes the response: the retrieved scalar sits in coefficient 0.
    ///
    /// # Errors
    /// Infallible today; fallible for API stability.
    pub fn decode(&self, response: &BfvCiphertext) -> Result<u64, PirError> {
        let he = self.params.he();
        let pt = response.decrypt(he, &self.sk);
        Ok(pt.values()[0])
    }

    /// Decodes a modulus-switched response (Table VIII's response
    /// compression): the same scalar, recovered from only the retained
    /// residues.
    ///
    /// # Errors
    /// Infallible today; fallible for API stability.
    pub fn decode_switched(&self, response: &SwitchedCiphertext) -> Result<u64, PirError> {
        let he = self.params.he();
        let pt = decrypt_switched(he, &self.sk, response);
        Ok(pt.values()[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn retrieves_scalars_across_chunks_and_positions() {
        let params = KsPirParams::toy();
        let total = params.num_scalars();
        let scalars: Vec<u64> = (0..total).map(|i| (i as u64 * 31 + 5) % params.he().p()).collect();
        let server = KsPirServer::new(params.clone(), &scalars).unwrap();
        let mut client = KsPirClient::new(&params, rand::rngs::StdRng::seed_from_u64(91)).unwrap();
        let n = params.he().n();
        for index in [0usize, 1, n - 1, n, n + 17, total - 1] {
            let query = client.query(index).unwrap();
            let response = server.answer(client.public_keys(), &query).unwrap();
            assert_eq!(client.decode(&response).unwrap(), scalars[index], "index {index}");
        }
    }

    #[test]
    fn trace_projects_constant_coefficient() {
        let params = KsPirParams::toy();
        let he = params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(92);
        let sk = SecretKey::generate(he, &mut rng);
        let rounds = ive_math::log2_exact(he.n()).unwrap();
        let keys: Vec<SubsKey> = expansion_exponents(he.n(), rounds)
            .into_iter()
            .map(|r| SubsKey::generate(he, &sk, r, &mut rng))
            .collect();
        // Message with every coefficient set; trace must keep N·m_0 — with
        // the 2^{-log N} pre-scaling, exactly m_0.
        let vals: Vec<u64> = (0..he.n()).map(|i| (i as u64 + 3) % he.p()).collect();
        let m = Plaintext::new(he, vals.clone()).unwrap();
        let q = he.q_big();
        let inv_n = he.inv_two_pow(rounds);
        let (hi, lo) = wide::mul_u128(he.delta(), inv_n);
        let scale = wide::div_rem_wide(hi, lo, q).1;
        let ct = BfvCiphertext::encrypt_scaled(he, &sk, &m, scale, &mut rng);
        let traced = trace(he, ct, &keys).unwrap();
        let out = traced.decrypt(he, &sk);
        assert_eq!(out.values()[0], vals[0]);
        assert!(out.values()[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn with_updates_matches_cold_repack_and_touches_only_written_chunks() {
        let params = KsPirParams::toy();
        let he = params.he();
        let n = he.n();
        let mut scalars: Vec<u64> = (0..params.num_scalars()).map(|i| i as u64 % he.p()).collect();
        let server = KsPirServer::new(params.clone(), &scalars).unwrap();
        // Both writes land in chunk 1; later write to the same slot wins.
        let writes = [(n + 2, 77u64), (n + 2, 78), (n + 9, 5)];
        let updated = server.with_updates(&writes).unwrap();
        for &(slot, value) in &writes {
            scalars[slot] = value;
        }
        let rebuilt = KsPirServer::new(params.clone(), &scalars).unwrap();
        assert_eq!(updated.scalars(), rebuilt.scalars());
        let mut client = KsPirClient::new(&params, rand::rngs::StdRng::seed_from_u64(94)).unwrap();
        for index in [0usize, n + 2, n + 9, params.num_scalars() - 1] {
            let query = client.query(index).unwrap();
            let a = updated.answer(client.public_keys(), &query).unwrap();
            let b = rebuilt.answer(client.public_keys(), &query).unwrap();
            assert_eq!(a, b, "incremental repack diverged at index {index}");
        }
        // Validation is atomic: a bad write leaves the server untouched.
        assert!(server.with_updates(&[(0, he.p())]).is_err());
        assert!(server.with_updates(&[(params.num_scalars(), 0)]).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let params = KsPirParams::toy();
        let mut client = KsPirClient::new(&params, rand::rngs::StdRng::seed_from_u64(93)).unwrap();
        assert!(client.query(params.num_scalars()).is_err());
    }

    #[test]
    fn too_many_scalars_rejected() {
        let params = KsPirParams::toy();
        let scalars = vec![0u64; params.num_scalars() + 1];
        assert!(KsPirServer::new(params, &scalars).is_err());
    }
}
