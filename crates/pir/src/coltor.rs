//! `ColTor` — the column tournament over RGSW external products (§II-C).
//!
//! After `RowSel`, `2^d` ciphertexts remain; each tournament level `t`
//! halves them with the CMux `sel_t ⊡ (X − Y) + Y`, where `X`/`Y` are the
//! entries whose row-index bit `t` is 1/0 and `sel_t` is the RGSW
//! encryption of bit `t` of the target row.
//!
//! Three traversal orders are provided — BFS, DFS, and the paper's
//! hierarchical search (HS, Fig. 7) — which perform *identical arithmetic*
//! (same CMux on the same operands) in different orders, so their outputs
//! are bit-identical; they differ only in working-set behaviour, which the
//! accelerator model in `ive-accel` charges for (Fig. 8).

use ive_he::{BfvCiphertext, HeParams, RgswCiphertext};
use ive_math::arena::KernelArena;
use ive_math::kernel::{self, VpeBackend};

use crate::PirError;

/// Traversal order for the tournament.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TournamentOrder {
    /// Level-by-level (Fig. 7a): maximal `ct_RGSW` reuse, maximal
    /// intermediate traffic.
    Bfs,
    /// Depth-first (Fig. 7b): minimal intermediate traffic, poor
    /// `ct_RGSW` reuse.
    Dfs,
    /// Hierarchical search (Fig. 7c) with the given subtree depth:
    /// DFS within subtrees whose working set fits on-chip.
    Hs {
        /// Levels folded per subtree pass.
        subtree_depth: u32,
    },
}

/// Runs the tournament, consuming `entries` (length must be `2^d` with
/// `d == sel_bits.len()`), and returns the single surviving ciphertext.
///
/// `sel_bits[t]` encrypts bit `t` of the target row index.
///
/// # Errors
/// Fails when the entry count is not a power of two matching the number of
/// selection bits.
pub fn col_tor(
    he: &HeParams,
    entries: Vec<BfvCiphertext>,
    sel_bits: &[RgswCiphertext],
    order: TournamentOrder,
) -> Result<BfvCiphertext, PirError> {
    col_tor_with(he, entries, sel_bits, order, kernel::default_backend(), &mut KernelArena::new())
}

/// [`col_tor`] through an explicit kernel backend, with every CMux's
/// `Dcp` scratch drawn from `arena` (the serving path: one warm buffer
/// set serves all `2^d − 1` tournament nodes).
///
/// # Errors
/// Fails when the entry count is not a power of two matching the number of
/// selection bits.
pub fn col_tor_with(
    he: &HeParams,
    entries: Vec<BfvCiphertext>,
    sel_bits: &[RgswCiphertext],
    order: TournamentOrder,
    backend: &dyn VpeBackend,
    arena: &mut KernelArena,
) -> Result<BfvCiphertext, PirError> {
    if entries.is_empty() || !entries.len().is_power_of_two() {
        return Err(PirError::InvalidParams(format!(
            "tournament over {} entries (need a power of two)",
            entries.len()
        )));
    }
    let d = entries.len().trailing_zeros() as usize;
    if sel_bits.len() < d {
        return Err(PirError::MissingKeys { got: sel_bits.len(), need: d });
    }
    match order {
        TournamentOrder::Bfs => col_tor_bfs(he, entries, sel_bits, backend, arena),
        TournamentOrder::Dfs => col_tor_dfs(he, &entries, sel_bits, backend, arena),
        TournamentOrder::Hs { subtree_depth } => {
            col_tor_hs(he, entries, sel_bits, subtree_depth.max(1), backend, arena)
        }
    }
}

/// One tournament node: `sel ⊡ (x − y) + y` (picks `x` when the bit is 1).
fn node(
    he: &HeParams,
    sel: &RgswCiphertext,
    x: &BfvCiphertext,
    y: &BfvCiphertext,
    backend: &dyn VpeBackend,
    arena: &mut KernelArena,
) -> Result<BfvCiphertext, PirError> {
    Ok(sel.cmux_with(he, x, y, backend, arena)?)
}

fn col_tor_bfs(
    he: &HeParams,
    mut entries: Vec<BfvCiphertext>,
    sel_bits: &[RgswCiphertext],
    backend: &dyn VpeBackend,
    arena: &mut KernelArena,
) -> Result<BfvCiphertext, PirError> {
    let d = entries.len().trailing_zeros() as usize;
    for (t, sel) in sel_bits.iter().enumerate().take(d) {
        let s = 1usize << t;
        let pairs = entries.len() >> (t + 1);
        for j in 0..pairs {
            let lo = 2 * s * j;
            let hi = lo + s;
            let z = node(he, sel, &entries[hi], &entries[lo], backend, arena)?;
            entries[lo] = z;
        }
    }
    Ok(entries.swap_remove(0))
}

fn col_tor_dfs(
    he: &HeParams,
    entries: &[BfvCiphertext],
    sel_bits: &[RgswCiphertext],
    backend: &dyn VpeBackend,
    arena: &mut KernelArena,
) -> Result<BfvCiphertext, PirError> {
    if entries.len() == 1 {
        return Ok(entries[0].clone());
    }
    let mid = entries.len() / 2;
    let bit = entries.len().trailing_zeros() as usize - 1;
    let lo = col_tor_dfs(he, &entries[..mid], sel_bits, backend, arena)?;
    let hi = col_tor_dfs(he, &entries[mid..], sel_bits, backend, arena)?;
    node(he, &sel_bits[bit], &hi, &lo, backend, arena)
}

fn col_tor_hs(
    he: &HeParams,
    entries: Vec<BfvCiphertext>,
    sel_bits: &[RgswCiphertext],
    subtree_depth: u32,
    backend: &dyn VpeBackend,
    arena: &mut KernelArena,
) -> Result<BfvCiphertext, PirError> {
    if entries.len() == 1 {
        return Ok(entries.into_iter().next().expect("non-empty"));
    }
    let d = entries.len().trailing_zeros();
    let fold = subtree_depth.min(d) as usize;
    let width = 1usize << fold;
    // Reduce each subtree of `width` adjacent entries with DFS (Fig. 7c),
    // consuming the low `fold` selection bits.
    let mut next = Vec::with_capacity(entries.len() / width);
    for group in entries.chunks(width) {
        next.push(col_tor_dfs(he, group, &sel_bits[..fold], backend, arena)?);
    }
    col_tor_hs(he, next, &sel_bits[fold..], subtree_depth, backend, arena)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ive_he::{Plaintext, SecretKey};
    use rand::{Rng, SeedableRng};

    fn setup(
        d: usize,
    ) -> (ive_he::HeParams, SecretKey, Vec<BfvCiphertext>, Vec<Plaintext>, rand::rngs::StdRng) {
        let he = ive_he::HeParams::toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(d as u64 + 100);
        let sk = SecretKey::generate(&he, &mut rng);
        let mut cts = Vec::new();
        let mut msgs = Vec::new();
        for _ in 0..1 << d {
            let vals: Vec<u64> = (0..he.n()).map(|_| rng.gen_range(0..he.p())).collect();
            let m = Plaintext::new(&he, vals).unwrap();
            cts.push(BfvCiphertext::encrypt(&he, &sk, &m, &mut rng));
            msgs.push(m);
        }
        (he, sk, cts, msgs, rng)
    }

    fn bits_of(row: usize, d: usize) -> Vec<bool> {
        (0..d).map(|t| (row >> t) & 1 == 1).collect()
    }

    #[test]
    fn tournament_selects_every_row_bfs() {
        let d = 3;
        let (he, sk, cts, msgs, mut rng) = setup(d);
        for (target, msg) in msgs.iter().enumerate() {
            let sels: Vec<RgswCiphertext> = bits_of(target, d)
                .iter()
                .map(|&b| RgswCiphertext::encrypt_bit(&he, &sk, b, &mut rng))
                .collect();
            let out = col_tor(&he, cts.clone(), &sels, TournamentOrder::Bfs).unwrap();
            assert_eq!(out.decrypt(&he, &sk), *msg, "target {target}");
        }
    }

    #[test]
    fn orders_produce_identical_ciphertexts() {
        let d = 3;
        let (he, sk, cts, _msgs, mut rng) = setup(d);
        let target = 5;
        let sels: Vec<RgswCiphertext> = bits_of(target, d)
            .iter()
            .map(|&b| RgswCiphertext::encrypt_bit(&he, &sk, b, &mut rng))
            .collect();
        let bfs = col_tor(&he, cts.clone(), &sels, TournamentOrder::Bfs).unwrap();
        let dfs = col_tor(&he, cts.clone(), &sels, TournamentOrder::Dfs).unwrap();
        for depth in 1..=3 {
            let hs = col_tor(&he, cts.clone(), &sels, TournamentOrder::Hs { subtree_depth: depth })
                .unwrap();
            assert_eq!(bfs, hs, "HS depth {depth} diverged");
        }
        // HS reorders scheduling only; the arithmetic is identical (§IV-A:
        // "it does not introduce any additional error growth").
        assert_eq!(bfs, dfs);
    }

    #[test]
    fn single_entry_passthrough() {
        let (he, sk, cts, msgs, _) = setup(0);
        let out = col_tor(&he, cts, &[], TournamentOrder::Dfs).unwrap();
        assert_eq!(out.decrypt(&he, &sk), msgs[0]);
    }

    #[test]
    fn non_power_of_two_rejected() {
        let (he, _, mut cts, _, _) = setup(2);
        cts.pop();
        assert!(col_tor(&he, cts, &[], TournamentOrder::Bfs).is_err());
    }

    #[test]
    fn missing_bits_rejected() {
        let (he, sk, cts, _, mut rng) = setup(2);
        let one_bit = vec![RgswCiphertext::encrypt_bit(&he, &sk, false, &mut rng)];
        assert!(matches!(
            col_tor(&he, cts, &one_bit, TournamentOrder::Bfs),
            Err(PirError::MissingKeys { got: 1, need: 2 })
        ));
    }
}
