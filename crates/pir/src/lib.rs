//! The single-server PIR protocol layer of the IVE reproduction.
//!
//! Implements the paper's main scheme — an optimized OnionPIR variant with
//! the three-step server pipeline `ExpandQuery → RowSel → ColTor`
//! (Fig. 2) — plus the two other single-server schemes of Table IV:
//!
//! * [`params`] / [`db`] — multi-dimensional geometry (§II-C) and offline
//!   database preprocessing (§II-B).
//! * [`expand`] — oblivious query expansion (§II-A).
//! * [`coltor`] — the RGSW tournament with BFS/DFS/HS traversal orders
//!   (Fig. 7); orders are bit-identical in output.
//! * [`client`] / [`server`] — end-to-end protocol endpoints.
//! * [`simplepir`] — SimplePIR (Regev-matrix PIR with offline hint).
//! * [`kspir`] — a KsPIR-style scheme (trace-based coefficient extraction
//!   via automorphism key-switching + RGSW outer dimension).
//! * [`keyword`] — a private key-value layer over [`kspir`]: cuckoo-hashed
//!   keys map to fixed slot groups, so `get(key)` becomes a constant
//!   pattern of scalar retrievals (no access-pattern leak).
//!
//! Databases are *live*: the [`update`] module stages row put/delete
//! deltas (validated and NTT-preprocessed off the query path),
//! [`Database::apply_updates`] commits them as numbered epochs whose
//! contents are bit-identical to a cold rebuild — copying only the row
//! pages a batch touches (copy-on-write, see [`db::CowStats`]) — and the
//! [`update::Journal`] makes staged-but-uncommitted batches survive a
//! crash.
//!
//! # Example
//!
//! ```
//! use ive_pir::{PirParams, Database, PirClient, PirServer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = PirParams::toy();
//! let records: Vec<Vec<u8>> = (0..params.num_records())
//!     .map(|i| format!("record #{i}").into_bytes())
//!     .collect();
//! let db = Database::from_records(&params, &records)?;
//! let server = PirServer::new(&params, db)?;
//! let mut client = PirClient::new(&params, rand::thread_rng())?;
//!
//! let query = client.query(7)?;
//! let response = server.answer(client.public_keys(), &query)?;
//! let record = client.decode(&query, &response)?;
//! assert_eq!(&record[..records[7].len()], &records[7][..]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod coltor;
pub mod db;
pub mod expand;
pub mod fault;
pub mod keyword;
pub mod kspir;
pub mod packed;
pub mod params;
pub mod scratch;
pub mod server;
pub mod simplepir;
pub mod update;
pub mod wire;

pub use client::{ClientKeys, PirClient, PirQuery};
pub use coltor::TournamentOrder;
pub use db::{CowStats, Database};
pub use ive_math::kernel::BackendKind;
pub use keyword::{KvSchema, KvStore};
pub use kspir::{KsPirClient, KsPirKeys, KsPirParams, KsPirQuery, KsPirServer};
pub use params::PirParams;
pub use scratch::QueryScratch;
pub use server::PirServer;
pub use update::{Journal, PreparedUpdate, RecordUpdate, UpdateLog};

/// Errors produced by the PIR layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum PirError {
    /// Underlying HE failure.
    He(ive_he::HeError),
    /// Underlying arithmetic failure.
    Math(ive_math::MathError),
    /// Scheme parameters are inconsistent.
    InvalidParams(String),
    /// A record exceeds the per-record capacity.
    RecordTooLarge {
        /// Which record.
        index: usize,
        /// Its length in bytes.
        len: usize,
        /// The per-record capacity in bytes.
        capacity: usize,
    },
    /// More records than the geometry can hold.
    TooManyRecords {
        /// Records supplied.
        got: usize,
        /// Geometry capacity.
        capacity: usize,
    },
    /// The requested record index is out of range.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of records.
        records: usize,
    },
    /// Too few evaluation keys / selection bits supplied.
    MissingKeys {
        /// Keys supplied.
        got: usize,
        /// Keys required.
        need: usize,
    },
    /// A serialized frame is malformed (truncated, bad magic, shape or
    /// range violation).
    Wire(String),
    /// An I/O failure in the durable journal.
    Io(std::io::Error),
}

impl From<ive_he::HeError> for PirError {
    fn from(e: ive_he::HeError) -> Self {
        PirError::He(e)
    }
}

impl From<ive_math::MathError> for PirError {
    fn from(e: ive_math::MathError) -> Self {
        PirError::Math(e)
    }
}

impl From<std::io::Error> for PirError {
    fn from(e: std::io::Error) -> Self {
        PirError::Io(e)
    }
}

impl core::fmt::Display for PirError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PirError::He(e) => write!(f, "HE error: {e}"),
            PirError::Math(e) => write!(f, "math error: {e}"),
            PirError::InvalidParams(msg) => write!(f, "invalid PIR parameters: {msg}"),
            PirError::RecordTooLarge { index, len, capacity } => {
                write!(f, "record {index} is {len} bytes but the capacity is {capacity}")
            }
            PirError::TooManyRecords { got, capacity } => {
                write!(f, "{got} records exceed the database capacity {capacity}")
            }
            PirError::IndexOutOfRange { index, records } => {
                write!(f, "record index {index} out of range (database holds {records})")
            }
            PirError::MissingKeys { got, need } => {
                write!(f, "{got} keys supplied where {need} are required")
            }
            PirError::Wire(msg) => write!(f, "malformed wire data: {msg}"),
            PirError::Io(e) => write!(f, "journal I/O error: {e}"),
        }
    }
}

impl std::error::Error for PirError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PirError::He(e) => Some(e),
            PirError::Math(e) => Some(e),
            PirError::Io(e) => Some(e),
            _ => None,
        }
    }
}
