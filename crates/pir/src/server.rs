//! The PIR server: `ExpandQuery → RowSel → ColTor` (Fig. 2).

use ive_he::BfvCiphertext;

use crate::client::{ClientKeys, PirQuery};
use crate::coltor::{col_tor, TournamentOrder};
use crate::db::Database;
use crate::expand::expand_query;
use crate::params::PirParams;
use crate::PirError;

/// Number of worker threads `RowSel` shards rows across.
const ROWSEL_THREADS: usize = 4;
/// Minimum rows per worker before sharding pays off.
const ROWSEL_MIN_ROWS_PER_THREAD: usize = 8;

/// A single-server PIR server holding one preprocessed database.
#[derive(Debug)]
pub struct PirServer {
    params: PirParams,
    db: Database,
    order: TournamentOrder,
}

impl PirServer {
    /// Wraps a preprocessed database.
    ///
    /// # Errors
    /// Fails when the database size does not match the geometry.
    pub fn new(params: &PirParams, db: Database) -> Result<Self, PirError> {
        if db.len() != params.num_records() || db.d0() != params.d0() {
            return Err(PirError::InvalidParams(format!(
                "database has {} records (D0 = {}), geometry wants {} (D0 = {})",
                db.len(),
                db.d0(),
                params.num_records(),
                params.d0()
            )));
        }
        Ok(PirServer {
            params: params.clone(),
            db,
            order: TournamentOrder::Hs { subtree_depth: 2 },
        })
    }

    /// Selects the `ColTor` traversal order (results are bit-identical;
    /// only scheduling differs — §IV-A).
    pub fn set_tournament_order(&mut self, order: TournamentOrder) {
        self.order = order;
    }

    /// The scheme parameters.
    #[inline]
    pub fn params(&self) -> &PirParams {
        &self.params
    }

    /// The preprocessed database.
    #[inline]
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Answers one query end to end.
    ///
    /// # Errors
    /// Propagates key/shape mismatches from the three pipeline steps.
    pub fn answer(&self, keys: &ClientKeys, query: &PirQuery) -> Result<BfvCiphertext, PirError> {
        let expanded = self.expand(keys, query)?;
        let rows = self.row_sel(&expanded)?;
        self.col_tor_step(rows, query)
    }

    /// Answers one query and modulus-switches the response down to the
    /// minimal safe residue prefix — a 2× smaller download at Table I
    /// parameters (OnionPIR's response compression; decode with
    /// [`PirClient::decode_compressed`]).
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn answer_compressed(
        &self,
        keys: &ClientKeys,
        query: &PirQuery,
    ) -> Result<ive_he::modswitch::SwitchedCiphertext, PirError> {
        let full = self.answer(keys, query)?;
        Ok(ive_he::modswitch::switch_to_first_prime(self.params.he(), &full)?)
    }

    /// Answers a batch of queries (possibly from different clients) with
    /// one database pass: all queries are expanded first, then `RowSel`
    /// touches each record polynomial once while accumulating for *every*
    /// query — the multi-client batching of §III-B, functionally.
    ///
    /// # Errors
    /// Propagates failures from any query's pipeline.
    pub fn answer_batch(
        &self,
        requests: &[(&ClientKeys, &PirQuery)],
    ) -> Result<Vec<BfvCiphertext>, PirError> {
        let he = self.params.he();
        // Step 1: per-query expansion (client-specific; not amortizable).
        let mut expanded = Vec::with_capacity(requests.len());
        for (keys, query) in requests {
            expanded.push(self.expand(keys, query)?);
        }
        // Step 2: one scan of the database serving all queries (Fig. 5
        // right: the query matrix gains 2·batch columns).
        let rows = self.params.num_rows();
        let mut accs: Vec<Vec<BfvCiphertext>> = (0..requests.len())
            .map(|_| (0..rows).map(|_| BfvCiphertext::zero(he)).collect())
            .collect();
        for r in 0..rows {
            for i in 0..self.params.d0() {
                let db_poly = self.db.poly(r, i);
                for (acc_row, exp) in accs.iter_mut().zip(&expanded) {
                    acc_row[r].fma_plain(db_poly, &exp[i])?;
                }
            }
        }
        // Step 3: per-query tournaments.
        requests.iter().zip(accs).map(|((_, query), acc)| self.col_tor_step(acc, query)).collect()
    }

    /// Step (1): `ExpandQuery` — derive the `D0` one-hot ciphertexts.
    ///
    /// # Errors
    /// Fails when the client registered too few expansion keys.
    pub fn expand(
        &self,
        keys: &ClientKeys,
        query: &PirQuery,
    ) -> Result<Vec<BfvCiphertext>, PirError> {
        expand_query(self.params.he(), query.packed(), keys.subs_keys(), self.params.log_d0())
    }

    /// Step (2): `RowSel` — `ct⁽⁰⁾_r = Σ_{i<D0} DB[r][i] ⊙ ct[i]` for every
    /// row `r` (Eq. 1 / Fig. 5). Shards rows across threads when the
    /// database is large enough.
    ///
    /// # Errors
    /// Fails when `expanded.len() != D0`.
    pub fn row_sel(&self, expanded: &[BfvCiphertext]) -> Result<Vec<BfvCiphertext>, PirError> {
        if expanded.len() != self.params.d0() {
            return Err(PirError::InvalidParams(format!(
                "RowSel needs {} expanded ciphertexts, got {}",
                self.params.d0(),
                expanded.len()
            )));
        }
        let he = self.params.he();
        let rows = self.params.num_rows();
        let reduce_row = |r: usize| -> Result<BfvCiphertext, PirError> {
            let mut acc = BfvCiphertext::zero(he);
            for (i, ct) in expanded.iter().enumerate() {
                acc.fma_plain(self.db.poly(r, i), ct)?;
            }
            Ok(acc)
        };

        if rows >= ROWSEL_THREADS * ROWSEL_MIN_ROWS_PER_THREAD {
            let mut out: Vec<Option<BfvCiphertext>> = vec![None; rows];
            let chunk = rows.div_ceil(ROWSEL_THREADS);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (start, slot_chunk) in (0..rows).step_by(chunk).zip(out.chunks_mut(chunk)) {
                    let reduce_row = &reduce_row;
                    handles.push(scope.spawn(move || -> Result<(), PirError> {
                        for (off, slot) in slot_chunk.iter_mut().enumerate() {
                            *slot = Some(reduce_row(start + off)?);
                        }
                        Ok(())
                    }));
                }
                for h in handles {
                    h.join().expect("RowSel worker panicked")?;
                }
                Ok::<(), PirError>(())
            })?;
            Ok(out.into_iter().map(|s| s.expect("all rows filled")).collect())
        } else {
            (0..rows).map(reduce_row).collect()
        }
    }

    /// Step (3): `ColTor` — tournament over the row ciphertexts using the
    /// query's RGSW bits.
    ///
    /// # Errors
    /// Fails when the query carries too few selection bits.
    pub fn col_tor_step(
        &self,
        rows: Vec<BfvCiphertext>,
        query: &PirQuery,
    ) -> Result<BfvCiphertext, PirError> {
        col_tor(self.params.he(), rows, query.row_bits(), self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PirClient;
    use crate::db::Database;
    use rand::SeedableRng;

    fn records(params: &PirParams) -> Vec<Vec<u8>> {
        (0..params.num_records()).map(|i| format!("record number {i:04}").into_bytes()).collect()
    }

    #[test]
    fn end_to_end_retrieval_every_index() {
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(71)).unwrap();
        // Exhaustive over all 64 records.
        for target in 0..params.num_records() {
            let query = client.query(target).unwrap();
            let response = server.answer(client.public_keys(), &query).unwrap();
            let got = client.decode(&query, &response).unwrap();
            assert_eq!(&got[..recs[target].len()], &recs[target][..], "record {target}");
        }
    }

    #[test]
    fn all_tournament_orders_agree_end_to_end() {
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let mut server = PirServer::new(&params, db).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(72)).unwrap();
        let query = client.query(42).unwrap();
        let mut answers = Vec::new();
        for order in [
            TournamentOrder::Bfs,
            TournamentOrder::Dfs,
            TournamentOrder::Hs { subtree_depth: 1 },
            TournamentOrder::Hs { subtree_depth: 2 },
            TournamentOrder::Hs { subtree_depth: 3 },
        ] {
            server.set_tournament_order(order);
            answers.push(server.answer(client.public_keys(), &query).unwrap());
        }
        for a in &answers[1..] {
            assert_eq!(a, &answers[0]);
        }
    }

    #[test]
    fn batched_answers_match_individual_answers() {
        // §III-B functionally: one DB pass serves many clients, and each
        // response is bit-identical to the unbatched one.
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        let mut clients: Vec<_> = (0..3)
            .map(|i| PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(200 + i)).unwrap())
            .collect();
        let targets = [5usize, 41, 63];
        let queries: Vec<_> =
            clients.iter_mut().zip(targets).map(|(c, t)| c.query(t).unwrap()).collect();
        let requests: Vec<_> =
            clients.iter().zip(&queries).map(|(c, q)| (c.public_keys(), q)).collect();
        let batched = server.answer_batch(&requests).unwrap();
        for ((client, query), (response, target)) in
            clients.iter().zip(&queries).zip(batched.iter().zip(targets))
        {
            let solo = server.answer(client.public_keys(), query).unwrap();
            assert_eq!(response, &solo, "batched response diverged");
            let plain = client.decode(query, response).unwrap();
            assert_eq!(&plain[..recs[target].len()], &recs[target][..]);
        }
    }

    #[test]
    fn wrong_geometry_rejected() {
        let params = PirParams::toy();
        let smaller = PirParams::new(params.he().clone(), 4, 2).unwrap();
        let db = Database::from_records(&smaller, &[]).unwrap();
        assert!(PirServer::new(&params, db).is_err());
    }

    #[test]
    fn response_noise_stays_within_budget() {
        // §II-C: response error ≈ RowSel error + O(d)·RGSW error, far below Δ/2.
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(73)).unwrap();
        let target = 9;
        let query = client.query(target).unwrap();
        let response = server.answer(client.public_keys(), &query).unwrap();
        let he = params.he();
        let expect = crate::db::plaintext_from_bytes(he, &recs[target]).unwrap();
        let budget = ive_he::noise::noise_budget_bits(he, client.secret_key(), &response, &expect);
        assert!(budget > 5.0, "remaining noise budget only {budget:.1} bits");
    }
}
