//! The PIR server: `ExpandQuery → RowSel → ColTor` (Fig. 2).
//!
//! The hot path dispatches every kernel through a selected
//! [`VpeBackend`](ive_math::kernel::VpeBackend) and draws scratch from a
//! caller-owned [`QueryScratch`]: `RowSel` is a streaming scan over the
//! database's contiguous limb-major buffer that accumulates into flat,
//! reused buffers — zero heap allocations per query once warm.

use ive_he::BfvCiphertext;
use ive_math::kernel::{self, BackendKind};
use ive_math::rns::Form;

use crate::client::{ClientKeys, PirQuery};
use crate::coltor::{col_tor, col_tor_with, TournamentOrder};
use crate::db::Database;
use crate::expand::expand_query_with;
use crate::params::PirParams;
use crate::scratch::QueryScratch;
use crate::PirError;

/// Minimum rows per worker before sharding pays off.
const ROWSEL_MIN_ROWS_PER_THREAD: usize = 8;

/// Default `RowSel` parallelism: one worker per available core, so a lone
/// server saturates the machine without oversubscribing it.
fn default_rowsel_threads() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

/// A single-server PIR server holding one preprocessed database.
#[derive(Debug)]
pub struct PirServer {
    params: PirParams,
    db: Database,
    order: TournamentOrder,
    rowsel_threads: usize,
    backend: BackendKind,
}

impl PirServer {
    /// Wraps a preprocessed database.
    ///
    /// # Errors
    /// Fails when the database size does not match the geometry.
    pub fn new(params: &PirParams, db: Database) -> Result<Self, PirError> {
        if db.len() != params.num_records() || db.d0() != params.d0() {
            return Err(PirError::InvalidParams(format!(
                "database has {} records (D0 = {}), geometry wants {} (D0 = {})",
                db.len(),
                db.d0(),
                params.num_records(),
                params.d0()
            )));
        }
        Ok(PirServer {
            params: params.clone(),
            db,
            order: TournamentOrder::Hs { subtree_depth: 2 },
            rowsel_threads: default_rowsel_threads(),
            backend: BackendKind::default(),
        })
    }

    /// Selects the kernel backend every pipeline step dispatches through
    /// (results are bit-identical across backends; only speed differs).
    pub fn set_backend(&mut self, backend: BackendKind) {
        self.backend = backend;
    }

    /// The kernel backend in effect.
    #[inline]
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Selects the `ColTor` traversal order (results are bit-identical;
    /// only scheduling differs — §IV-A).
    pub fn set_tournament_order(&mut self, order: TournamentOrder) {
        self.order = order;
    }

    /// The `ColTor` traversal order in effect.
    #[inline]
    pub fn tournament_order(&self) -> TournamentOrder {
        self.order
    }

    /// Caps `RowSel` parallelism at `threads` workers (clamped to ≥ 1).
    ///
    /// Defaults to [`std::thread::available_parallelism`]; a serving
    /// runtime that already runs its own worker pool should set this to 1
    /// so the pools compose instead of oversubscribing cores.
    pub fn set_rowsel_threads(&mut self, threads: usize) {
        self.rowsel_threads = threads.max(1);
    }

    /// The `RowSel` worker cap in effect.
    #[inline]
    pub fn rowsel_threads(&self) -> usize {
        self.rowsel_threads
    }

    /// The scheme parameters.
    #[inline]
    pub fn params(&self) -> &PirParams {
        &self.params
    }

    /// The preprocessed database.
    #[inline]
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The database's update epoch (see [`Database::epoch`]); answers
    /// from this server reflect exactly the contents at that epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// A new server over `db` inheriting this server's tuning (traversal
    /// order, `RowSel` threads, backend) — the epoch-swap constructor:
    /// the serving layer clones the current database, applies a drained
    /// update batch, and swaps the result in behind an `Arc` while
    /// in-flight scans finish on the old snapshot.
    ///
    /// # Errors
    /// Fails when `db` does not match this server's geometry.
    pub fn with_database(&self, db: Database) -> Result<Self, PirError> {
        let mut server = PirServer::new(&self.params, db)?;
        server.order = self.order;
        server.rowsel_threads = self.rowsel_threads;
        server.backend = self.backend;
        Ok(server)
    }

    /// Answers one query end to end.
    ///
    /// # Errors
    /// Propagates key/shape mismatches from the three pipeline steps.
    pub fn answer(&self, keys: &ClientKeys, query: &PirQuery) -> Result<BfvCiphertext, PirError> {
        self.answer_with(keys, query, &mut QueryScratch::new())
    }

    /// Answers one query end to end with caller-owned scratch — the
    /// serving path: a worker that reuses one [`QueryScratch`] across
    /// queries keeps the whole `RowSel` stage allocation-free.
    ///
    /// # Errors
    /// Propagates key/shape mismatches from the three pipeline steps.
    pub fn answer_with(
        &self,
        keys: &ClientKeys,
        query: &PirQuery,
        scratch: &mut QueryScratch,
    ) -> Result<BfvCiphertext, PirError> {
        let expanded = self.expand_with(keys, query, scratch)?;
        self.row_sel_into(&expanded, scratch)?;
        let rows = scratch.row_ciphertexts(self.params.he().ring(), 0);
        self.col_tor_step_with(rows, query, scratch)
    }

    /// Answers one query and modulus-switches the response down to the
    /// minimal safe residue prefix — a 2× smaller download at Table I
    /// parameters (OnionPIR's response compression; decode with
    /// [`PirClient::decode_compressed`](crate::PirClient::decode_compressed)).
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn answer_compressed(
        &self,
        keys: &ClientKeys,
        query: &PirQuery,
    ) -> Result<ive_he::modswitch::SwitchedCiphertext, PirError> {
        let full = self.answer(keys, query)?;
        Ok(ive_he::modswitch::switch_to_first_prime(self.params.he(), &full)?)
    }

    /// Answers a batch of queries (possibly from different clients) with
    /// one database pass: all queries are expanded first, then `RowSel`
    /// touches each record polynomial once while accumulating for *every*
    /// query — the multi-client batching of §III-B, functionally.
    ///
    /// # Errors
    /// Propagates failures from any query's pipeline.
    pub fn answer_batch(
        &self,
        requests: &[(&ClientKeys, &PirQuery)],
    ) -> Result<Vec<BfvCiphertext>, PirError> {
        self.answer_batch_with(requests, &mut QueryScratch::new())
    }

    /// Batched answering with caller-owned scratch (see
    /// [`PirServer::answer_with`]).
    ///
    /// # Errors
    /// Propagates failures from any query's pipeline.
    pub fn answer_batch_with(
        &self,
        requests: &[(&ClientKeys, &PirQuery)],
        scratch: &mut QueryScratch,
    ) -> Result<Vec<BfvCiphertext>, PirError> {
        // Step 1: per-query expansion (client-specific; not amortizable).
        let mut expanded = Vec::with_capacity(requests.len());
        for (keys, query) in requests {
            expanded.push(self.expand_with(keys, query, scratch)?);
        }
        // Step 2: one scan of the database serving all queries.
        self.row_sel_batch_into(&expanded, scratch)?;
        // Step 3: per-query tournaments.
        let ring = self.params.he().ring().clone();
        requests
            .iter()
            .enumerate()
            .map(|(qi, (_, query))| {
                let rows = scratch.row_ciphertexts(&ring, qi);
                self.col_tor_step_with(rows, query, scratch)
            })
            .collect()
    }

    /// Batched `RowSel`: one scan of the database accumulating for every
    /// query at once (Fig. 5 right: the query matrix gains 2·batch
    /// columns). Returns one row-ciphertext vector per query, in input
    /// order. This is the hook a serving layer shards and batches over;
    /// like [`PirServer::row_sel`], the row dimension is split across
    /// [`PirServer::rowsel_threads`] workers when it is large enough.
    ///
    /// # Errors
    /// Fails when any query's expansion does not have `D0` ciphertexts.
    pub fn row_sel_batch(
        &self,
        expanded: &[Vec<BfvCiphertext>],
    ) -> Result<Vec<Vec<BfvCiphertext>>, PirError> {
        let mut scratch = QueryScratch::new();
        self.row_sel_batch_into(expanded, &mut scratch)?;
        let ring = self.params.he().ring();
        Ok((0..expanded.len()).map(|qi| scratch.row_ciphertexts(ring, qi)).collect())
    }

    /// Batched `RowSel` into caller-owned scratch: the streaming scan at
    /// the heart of the server. Walks the database's contiguous limb
    /// buffer once, front to back, and FMA-accumulates every query's row
    /// ciphertexts in flat reused buffers through the selected kernel
    /// backend — no heap allocation once `scratch` is warm. Results are
    /// read back with [`QueryScratch::row_words`] /
    /// [`QueryScratch::row_ciphertexts`].
    ///
    /// # Errors
    /// Fails when any query's expansion does not have `D0` ciphertexts.
    pub fn row_sel_batch_into(
        &self,
        expanded: &[Vec<BfvCiphertext>],
        scratch: &mut QueryScratch,
    ) -> Result<(), PirError> {
        self.row_sel_scan(expanded, scratch)
    }

    /// The streaming scan shared by the single and batched entry points,
    /// generic over how each query's expansion slice is held so neither
    /// path pays an adapter allocation.
    fn row_sel_scan<E: AsRef<[BfvCiphertext]> + Sync>(
        &self,
        expanded: &[E],
        scratch: &mut QueryScratch,
    ) -> Result<(), PirError> {
        let he = self.params.he();
        let ring = he.ring();
        for exp in expanded {
            let exp = exp.as_ref();
            if exp.len() != self.params.d0() {
                return Err(PirError::InvalidParams(format!(
                    "RowSel needs {} expanded ciphertexts, got {}",
                    self.params.d0(),
                    exp.len()
                )));
            }
            // The flat kernel scan trusts raw words, so reject what the
            // polynomial algebra used to: wrong-form or wrong-ring
            // ciphertexts must be an error, not a garbage answer or a
            // panic inside a scan worker.
            for ct in exp {
                if ct.a.form() != Form::Ntt || ct.b.form() != Form::Ntt {
                    return Err(PirError::InvalidParams(
                        "RowSel needs NTT-form expanded ciphertexts".into(),
                    ));
                }
                if **ct.a.ctx() != **ring || **ct.b.ctx() != **ring {
                    return Err(PirError::InvalidParams(
                        "expanded ciphertext lives in a different ring than the database".into(),
                    ));
                }
            }
        }
        let backend = self.backend.backend();
        let moduli = ring.basis().moduli();
        let n = he.n();
        let k = moduli.len();
        let d0 = self.params.d0();
        let rows = self.params.num_rows();
        let ct_words = 2 * k * n;
        let row_block = expanded.len() * ct_words;
        if expanded.is_empty() {
            // Nothing to accumulate; leave an explicitly empty result
            // shape instead of feeding a zero chunk size to the scan.
            scratch.reset_accumulators(0, 0, ct_words);
            return Ok(());
        }
        scratch.reset_accumulators(rows, expanded.len(), ct_words);

        // A database stream that exceeds the LLC is touched exactly once
        // per scan, so caching it only evicts data that *would* be reused
        // (accumulators, expansion residues): prefetch it non-temporally.
        // Toy geometries that re-scan a hot buffer keep the T0 hint.
        let db_bytes = rows * d0 * k * n * 8;
        let prefetch: fn(&[u64]) = if db_bytes > kernel::effective_llc_bytes() {
            kernel::prefetch_row_nt
        } else {
            kernel::prefetch_row
        };

        // One worker's share: rows [start, start + chunk_rows) of the
        // accumulator matrix over record slots [d0_range), streaming the
        // database limb-major. Each record slice is loaded once and
        // serves every query of the batch through the cache-blocked
        // fused scan kernel (all k residues and both ciphertext
        // accumulators of every query consumed per loaded tile), with
        // the head of the *next* record's limb row prefetched while the
        // current one computes — the streaming half of the paper's
        // bandwidth-bound scan.
        let rows_end = rows;
        let scan = |start: usize, acc: &mut [u64], d0_range: std::ops::Range<usize>| {
            for (off, block) in acc.chunks_mut(row_block).enumerate() {
                let r = start + off;
                for i in d0_range.clone() {
                    let words = self.db.poly_words(r, i);
                    let (nr, ni) =
                        if i + 1 < d0_range.end { (r, i + 1) } else { (r + 1, d0_range.start) };
                    if nr < rows_end {
                        prefetch(self.db.poly_words(nr, ni));
                    }
                    kernel::scan_fma_poly_blocked(backend, moduli, words, block, |q| {
                        let exp = &expanded[q].as_ref()[i];
                        (exp.a.as_words(), exp.b.as_words())
                    });
                }
            }
        };

        let threads = self.rowsel_threads;
        if threads > 1 && rows >= threads * ROWSEL_MIN_ROWS_PER_THREAD {
            // Enough rows for every worker to own a disjoint row range of
            // the shared accumulator matrix: no reduction needed, and the
            // partition is trivially bit-identical to the sequential scan.
            let acc = scratch.acc_mut();
            let chunk_rows = rows.div_ceil(threads);
            std::thread::scope(|scope| {
                for (start, acc_chunk) in
                    (0..rows).step_by(chunk_rows).zip(acc.chunks_mut(chunk_rows * row_block))
                {
                    let scan = &scan;
                    scope.spawn(move || scan(start, acc_chunk, 0..d0));
                }
            });
        } else if threads > 1 && d0 >= 2 && rows > 0 {
            // Too few rows for disjoint row chunks: partition the record
            // (D0) dimension of the flat shard instead. Every worker
            // scans all rows over its own D0 range — the first range into
            // the shared accumulator on this thread, the rest into
            // per-thread partials from the scratch pool — and the
            // partials are folded in afterwards with per-limb modular
            // adds. Addition mod q is exactly associative and commutative
            // on canonical `[0, q)` words, so the reduced result is
            // bit-identical to the sequential left-to-right accumulation
            // (enforced by the thread-matrix differential tests).
            let workers = threads.min(d0);
            let chunk_d0 = d0.div_ceil(workers);
            let spawned = d0.div_ceil(chunk_d0) - 1;
            let (acc, partials) = scratch.acc_and_partials(spawned);
            std::thread::scope(|scope| {
                let mut ranges = (0..d0).step_by(chunk_d0).map(|lo| lo..(lo + chunk_d0).min(d0));
                let first = ranges.next().expect("d0 >= 2");
                for (d0_range, part) in ranges.zip(partials.iter_mut()) {
                    let scan = &scan;
                    scope.spawn(move || scan(0, part, d0_range));
                }
                scan(0, &mut *acc, first);
            });
            // Fold the partials into the shared accumulator. The flat
            // matrix cycles limb rows with period k within each k·n
            // half, so n-chunk c reduces under modulus c mod k.
            for part in partials.iter() {
                for (c, (dst, src)) in acc.chunks_mut(n).zip(part.chunks(n)).enumerate() {
                    let q = moduli[c % k].value();
                    for (d, &s) in dst.iter_mut().zip(src) {
                        let sum = *d + s;
                        *d = if sum >= q { sum - q } else { sum };
                    }
                }
            }
        } else {
            scan(0, scratch.acc_mut(), 0..d0);
        }
        Ok(())
    }

    /// Step (1): `ExpandQuery` — derive the `D0` one-hot ciphertexts.
    ///
    /// # Errors
    /// Fails when the client registered too few expansion keys.
    pub fn expand(
        &self,
        keys: &ClientKeys,
        query: &PirQuery,
    ) -> Result<Vec<BfvCiphertext>, PirError> {
        self.expand_with(keys, query, &mut QueryScratch::new())
    }

    /// `ExpandQuery` with caller-owned scratch for the key-switch `Dcp`
    /// buffers.
    ///
    /// # Errors
    /// Fails when the client registered too few expansion keys.
    pub fn expand_with(
        &self,
        keys: &ClientKeys,
        query: &PirQuery,
        scratch: &mut QueryScratch,
    ) -> Result<Vec<BfvCiphertext>, PirError> {
        expand_query_with(
            self.params.he(),
            query.packed(),
            keys.subs_keys(),
            self.params.log_d0(),
            self.backend.backend(),
            &mut scratch.arena,
        )
    }

    /// Step (2): `RowSel` — `ct⁽⁰⁾_r = Σ_{i<D0} DB[r][i] ⊙ ct[i]` for every
    /// row `r` (Eq. 1 / Fig. 5). Shards rows across threads when the
    /// database is large enough.
    ///
    /// # Errors
    /// Fails when `expanded.len() != D0`.
    pub fn row_sel(&self, expanded: &[BfvCiphertext]) -> Result<Vec<BfvCiphertext>, PirError> {
        let mut scratch = QueryScratch::new();
        self.row_sel_into(expanded, &mut scratch)?;
        Ok(scratch.row_ciphertexts(self.params.he().ring(), 0))
    }

    /// Single-query `RowSel` into caller-owned scratch (a batch of one;
    /// see [`PirServer::row_sel_batch_into`] for the scan itself).
    ///
    /// # Errors
    /// Fails when `expanded.len() != D0`.
    pub fn row_sel_into(
        &self,
        expanded: &[BfvCiphertext],
        scratch: &mut QueryScratch,
    ) -> Result<(), PirError> {
        self.row_sel_scan(&[expanded], scratch)
    }

    /// Step (3): `ColTor` — tournament over the row ciphertexts using the
    /// query's RGSW bits.
    ///
    /// # Errors
    /// Fails when the query carries too few selection bits.
    pub fn col_tor_step(
        &self,
        rows: Vec<BfvCiphertext>,
        query: &PirQuery,
    ) -> Result<BfvCiphertext, PirError> {
        col_tor(self.params.he(), rows, query.row_bits(), self.order)
    }

    /// `ColTor` through the selected backend with caller-owned scratch.
    ///
    /// # Errors
    /// Fails when the query carries too few selection bits.
    pub fn col_tor_step_with(
        &self,
        rows: Vec<BfvCiphertext>,
        query: &PirQuery,
        scratch: &mut QueryScratch,
    ) -> Result<BfvCiphertext, PirError> {
        col_tor_with(
            self.params.he(),
            rows,
            query.row_bits(),
            self.order,
            self.backend.backend(),
            &mut scratch.arena,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PirClient;
    use crate::db::Database;
    use rand::SeedableRng;

    fn records(params: &PirParams) -> Vec<Vec<u8>> {
        (0..params.num_records()).map(|i| format!("record number {i:04}").into_bytes()).collect()
    }

    #[test]
    fn end_to_end_retrieval_every_index() {
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(71)).unwrap();
        // Exhaustive over all 64 records.
        for target in 0..params.num_records() {
            let query = client.query(target).unwrap();
            let response = server.answer(client.public_keys(), &query).unwrap();
            let got = client.decode(&query, &response).unwrap();
            assert_eq!(&got[..recs[target].len()], &recs[target][..], "record {target}");
        }
    }

    #[test]
    fn all_tournament_orders_agree_end_to_end() {
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let mut server = PirServer::new(&params, db).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(72)).unwrap();
        let query = client.query(42).unwrap();
        let mut answers = Vec::new();
        for order in [
            TournamentOrder::Bfs,
            TournamentOrder::Dfs,
            TournamentOrder::Hs { subtree_depth: 1 },
            TournamentOrder::Hs { subtree_depth: 2 },
            TournamentOrder::Hs { subtree_depth: 3 },
        ] {
            server.set_tournament_order(order);
            answers.push(server.answer(client.public_keys(), &query).unwrap());
        }
        for a in &answers[1..] {
            assert_eq!(a, &answers[0]);
        }
    }

    #[test]
    fn batched_answers_match_individual_answers() {
        // §III-B functionally: one DB pass serves many clients, and each
        // response is bit-identical to the unbatched one.
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        let mut clients: Vec<_> = (0..3)
            .map(|i| PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(200 + i)).unwrap())
            .collect();
        let targets = [5usize, 41, 63];
        let queries: Vec<_> =
            clients.iter_mut().zip(targets).map(|(c, t)| c.query(t).unwrap()).collect();
        let requests: Vec<_> =
            clients.iter().zip(&queries).map(|(c, q)| (c.public_keys(), q)).collect();
        let batched = server.answer_batch(&requests).unwrap();
        for ((client, query), (response, target)) in
            clients.iter().zip(&queries).zip(batched.iter().zip(targets))
        {
            let solo = server.answer(client.public_keys(), query).unwrap();
            assert_eq!(response, &solo, "batched response diverged");
            let plain = client.decode(query, response).unwrap();
            assert_eq!(&plain[..recs[target].len()], &recs[target][..]);
        }
    }

    #[test]
    fn rowsel_thread_count_does_not_change_answers() {
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let mut server = PirServer::new(&params, db).unwrap();
        assert!(server.rowsel_threads() >= 1);
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(74)).unwrap();
        let query = client.query(17).unwrap();
        let mut answers = Vec::new();
        let mut batched = Vec::new();
        let requests = [(client.public_keys(), &query)];
        // 2 splits evenly, 4 and 7 leave ragged partitions, 64 exceeds
        // both rows and d0 (the worker count clamps).
        for threads in [1usize, 2, 4, 7, 64] {
            server.set_rowsel_threads(threads);
            assert_eq!(server.rowsel_threads(), threads);
            answers.push(server.answer(client.public_keys(), &query).unwrap());
            batched.push(server.answer_batch(&requests).unwrap().pop().unwrap());
        }
        for (a, b) in answers[1..].iter().zip(&batched[1..]) {
            assert_eq!(a, &answers[0], "RowSel sharding changed the answer");
            assert_eq!(b, &batched[0], "batched RowSel sharding changed the answer");
        }
        assert_eq!(answers[0], batched[0], "batched path diverged from single path");
    }

    #[test]
    fn row_shards_recombine_to_the_full_answer() {
        // Split the 2^d rows into 2^k aligned shards, answer the low
        // (d - k) tournament levels per shard, and finish with the high k
        // bits: the result must be bit-identical to the monolithic server.
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db.clone()).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(75)).unwrap();
        let he = params.he();
        for shard_bits in [1u32, 2] {
            let shards = 1usize << shard_bits;
            let sub_dims = params.dims() - shard_bits;
            let sub_params = PirParams::new(he.clone(), params.d0(), sub_dims).unwrap();
            let rows_per_shard = params.num_rows() / shards;
            let shard_servers: Vec<PirServer> = (0..shards)
                .map(|s| {
                    let shard_db = db.shard_rows(s * rows_per_shard, rows_per_shard).unwrap();
                    PirServer::new(&sub_params, shard_db).unwrap()
                })
                .collect();
            let query = client.query(29).unwrap();
            let winners: Vec<BfvCiphertext> = shard_servers
                .iter()
                .map(|s| s.answer(client.public_keys(), &query).unwrap())
                .collect();
            let combined = crate::coltor::col_tor(
                he,
                winners,
                &query.row_bits()[sub_dims as usize..],
                TournamentOrder::Bfs,
            )
            .unwrap();
            let full = server.answer(client.public_keys(), &query).unwrap();
            assert_eq!(combined, full, "{shards}-way sharding diverged");
        }
    }

    #[test]
    fn empty_batch_answers_empty() {
        let params = PirParams::toy();
        let db = Database::from_records(&params, &[]).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        assert!(server.answer_batch(&[]).unwrap().is_empty());
        assert!(server.row_sel_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn coefficient_form_expansion_rejected() {
        // The flat scan trusts raw words; a coefficient-form ciphertext
        // must be an error, not a silently wrong answer.
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(76)).unwrap();
        let query = client.query(3).unwrap();
        let mut expanded = server.expand(client.public_keys(), &query).unwrap();
        expanded[0].a.to_coeff();
        assert!(matches!(server.row_sel(&expanded), Err(PirError::InvalidParams(_))));
    }

    #[test]
    fn wrong_geometry_rejected() {
        let params = PirParams::toy();
        let smaller = PirParams::new(params.he().clone(), 4, 2).unwrap();
        let db = Database::from_records(&smaller, &[]).unwrap();
        assert!(PirServer::new(&params, db).is_err());
    }

    #[test]
    fn response_noise_stays_within_budget() {
        // §II-C: response error ≈ RowSel error + O(d)·RGSW error, far below Δ/2.
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(73)).unwrap();
        let target = 9;
        let query = client.query(target).unwrap();
        let response = server.answer(client.public_keys(), &query).unwrap();
        let he = params.he();
        let expect = crate::db::plaintext_from_bytes(he, &recs[target]).unwrap();
        let budget = ive_he::noise::noise_budget_bits(he, client.secret_key(), &response, &expect);
        assert!(budget > 5.0, "remaining noise budget only {budget:.1} bits");
    }
}
