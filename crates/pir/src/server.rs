//! The PIR server: `ExpandQuery → RowSel → ColTor` (Fig. 2).

use ive_he::BfvCiphertext;

use crate::client::{ClientKeys, PirQuery};
use crate::coltor::{col_tor, TournamentOrder};
use crate::db::Database;
use crate::expand::expand_query;
use crate::params::PirParams;
use crate::PirError;

/// Minimum rows per worker before sharding pays off.
const ROWSEL_MIN_ROWS_PER_THREAD: usize = 8;

/// Default `RowSel` parallelism: one worker per available core, so a lone
/// server saturates the machine without oversubscribing it.
fn default_rowsel_threads() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

/// A single-server PIR server holding one preprocessed database.
#[derive(Debug)]
pub struct PirServer {
    params: PirParams,
    db: Database,
    order: TournamentOrder,
    rowsel_threads: usize,
}

impl PirServer {
    /// Wraps a preprocessed database.
    ///
    /// # Errors
    /// Fails when the database size does not match the geometry.
    pub fn new(params: &PirParams, db: Database) -> Result<Self, PirError> {
        if db.len() != params.num_records() || db.d0() != params.d0() {
            return Err(PirError::InvalidParams(format!(
                "database has {} records (D0 = {}), geometry wants {} (D0 = {})",
                db.len(),
                db.d0(),
                params.num_records(),
                params.d0()
            )));
        }
        Ok(PirServer {
            params: params.clone(),
            db,
            order: TournamentOrder::Hs { subtree_depth: 2 },
            rowsel_threads: default_rowsel_threads(),
        })
    }

    /// Selects the `ColTor` traversal order (results are bit-identical;
    /// only scheduling differs — §IV-A).
    pub fn set_tournament_order(&mut self, order: TournamentOrder) {
        self.order = order;
    }

    /// The `ColTor` traversal order in effect.
    #[inline]
    pub fn tournament_order(&self) -> TournamentOrder {
        self.order
    }

    /// Caps `RowSel` parallelism at `threads` workers (clamped to ≥ 1).
    ///
    /// Defaults to [`std::thread::available_parallelism`]; a serving
    /// runtime that already runs its own worker pool should set this to 1
    /// so the pools compose instead of oversubscribing cores.
    pub fn set_rowsel_threads(&mut self, threads: usize) {
        self.rowsel_threads = threads.max(1);
    }

    /// The `RowSel` worker cap in effect.
    #[inline]
    pub fn rowsel_threads(&self) -> usize {
        self.rowsel_threads
    }

    /// The scheme parameters.
    #[inline]
    pub fn params(&self) -> &PirParams {
        &self.params
    }

    /// The preprocessed database.
    #[inline]
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Answers one query end to end.
    ///
    /// # Errors
    /// Propagates key/shape mismatches from the three pipeline steps.
    pub fn answer(&self, keys: &ClientKeys, query: &PirQuery) -> Result<BfvCiphertext, PirError> {
        let expanded = self.expand(keys, query)?;
        let rows = self.row_sel(&expanded)?;
        self.col_tor_step(rows, query)
    }

    /// Answers one query and modulus-switches the response down to the
    /// minimal safe residue prefix — a 2× smaller download at Table I
    /// parameters (OnionPIR's response compression; decode with
    /// [`PirClient::decode_compressed`]).
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn answer_compressed(
        &self,
        keys: &ClientKeys,
        query: &PirQuery,
    ) -> Result<ive_he::modswitch::SwitchedCiphertext, PirError> {
        let full = self.answer(keys, query)?;
        Ok(ive_he::modswitch::switch_to_first_prime(self.params.he(), &full)?)
    }

    /// Answers a batch of queries (possibly from different clients) with
    /// one database pass: all queries are expanded first, then `RowSel`
    /// touches each record polynomial once while accumulating for *every*
    /// query — the multi-client batching of §III-B, functionally.
    ///
    /// # Errors
    /// Propagates failures from any query's pipeline.
    pub fn answer_batch(
        &self,
        requests: &[(&ClientKeys, &PirQuery)],
    ) -> Result<Vec<BfvCiphertext>, PirError> {
        // Step 1: per-query expansion (client-specific; not amortizable).
        let mut expanded = Vec::with_capacity(requests.len());
        for (keys, query) in requests {
            expanded.push(self.expand(keys, query)?);
        }
        // Step 2: one scan of the database serving all queries.
        let accs = self.row_sel_batch(&expanded)?;
        // Step 3: per-query tournaments.
        requests.iter().zip(accs).map(|((_, query), acc)| self.col_tor_step(acc, query)).collect()
    }

    /// Batched `RowSel`: one scan of the database accumulating for every
    /// query at once (Fig. 5 right: the query matrix gains 2·batch
    /// columns). Returns one row-ciphertext vector per query, in input
    /// order. This is the hook a serving layer shards and batches over;
    /// like [`PirServer::row_sel`], the row dimension is split across
    /// [`PirServer::rowsel_threads`] workers when it is large enough.
    ///
    /// # Errors
    /// Fails when any query's expansion does not have `D0` ciphertexts.
    pub fn row_sel_batch(
        &self,
        expanded: &[Vec<BfvCiphertext>],
    ) -> Result<Vec<Vec<BfvCiphertext>>, PirError> {
        let he = self.params.he();
        for exp in expanded {
            if exp.len() != self.params.d0() {
                return Err(PirError::InvalidParams(format!(
                    "RowSel needs {} expanded ciphertexts, got {}",
                    self.params.d0(),
                    exp.len()
                )));
            }
        }
        let rows = self.params.num_rows();
        // Accumulate row-major ([row][query]) so threads own disjoint row
        // chunks; transposed to [query][row] on return.
        let scan_rows = |start: usize, by_row: &mut [Vec<BfvCiphertext>]| -> Result<(), PirError> {
            for (off, per_query) in by_row.iter_mut().enumerate() {
                let r = start + off;
                for i in 0..self.params.d0() {
                    let db_poly = self.db.poly(r, i);
                    for (acc, exp) in per_query.iter_mut().zip(expanded) {
                        acc.fma_plain(db_poly, &exp[i])?;
                    }
                }
            }
            Ok(())
        };
        let mut by_row: Vec<Vec<BfvCiphertext>> = (0..rows)
            .map(|_| (0..expanded.len()).map(|_| BfvCiphertext::zero(he)).collect())
            .collect();
        let threads = self.rowsel_threads;
        if threads > 1 && rows >= threads * ROWSEL_MIN_ROWS_PER_THREAD {
            let chunk = rows.div_ceil(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (start, row_chunk) in (0..rows).step_by(chunk).zip(by_row.chunks_mut(chunk)) {
                    let scan_rows = &scan_rows;
                    handles.push(scope.spawn(move || scan_rows(start, row_chunk)));
                }
                for h in handles {
                    h.join().expect("RowSel worker panicked")?;
                }
                Ok::<(), PirError>(())
            })?;
        } else {
            scan_rows(0, &mut by_row)?;
        }
        // Transpose by move: peel each row's accumulators into the
        // per-query vectors.
        let mut accs: Vec<Vec<BfvCiphertext>> =
            (0..expanded.len()).map(|_| Vec::with_capacity(rows)).collect();
        for per_query in by_row {
            for (acc, ct) in accs.iter_mut().zip(per_query) {
                acc.push(ct);
            }
        }
        Ok(accs)
    }

    /// Step (1): `ExpandQuery` — derive the `D0` one-hot ciphertexts.
    ///
    /// # Errors
    /// Fails when the client registered too few expansion keys.
    pub fn expand(
        &self,
        keys: &ClientKeys,
        query: &PirQuery,
    ) -> Result<Vec<BfvCiphertext>, PirError> {
        expand_query(self.params.he(), query.packed(), keys.subs_keys(), self.params.log_d0())
    }

    /// Step (2): `RowSel` — `ct⁽⁰⁾_r = Σ_{i<D0} DB[r][i] ⊙ ct[i]` for every
    /// row `r` (Eq. 1 / Fig. 5). Shards rows across threads when the
    /// database is large enough.
    ///
    /// # Errors
    /// Fails when `expanded.len() != D0`.
    pub fn row_sel(&self, expanded: &[BfvCiphertext]) -> Result<Vec<BfvCiphertext>, PirError> {
        if expanded.len() != self.params.d0() {
            return Err(PirError::InvalidParams(format!(
                "RowSel needs {} expanded ciphertexts, got {}",
                self.params.d0(),
                expanded.len()
            )));
        }
        let he = self.params.he();
        let rows = self.params.num_rows();
        let reduce_row = |r: usize| -> Result<BfvCiphertext, PirError> {
            let mut acc = BfvCiphertext::zero(he);
            for (i, ct) in expanded.iter().enumerate() {
                acc.fma_plain(self.db.poly(r, i), ct)?;
            }
            Ok(acc)
        };

        let threads = self.rowsel_threads;
        if threads > 1 && rows >= threads * ROWSEL_MIN_ROWS_PER_THREAD {
            let mut out: Vec<Option<BfvCiphertext>> = vec![None; rows];
            let chunk = rows.div_ceil(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (start, slot_chunk) in (0..rows).step_by(chunk).zip(out.chunks_mut(chunk)) {
                    let reduce_row = &reduce_row;
                    handles.push(scope.spawn(move || -> Result<(), PirError> {
                        for (off, slot) in slot_chunk.iter_mut().enumerate() {
                            *slot = Some(reduce_row(start + off)?);
                        }
                        Ok(())
                    }));
                }
                for h in handles {
                    h.join().expect("RowSel worker panicked")?;
                }
                Ok::<(), PirError>(())
            })?;
            Ok(out.into_iter().map(|s| s.expect("all rows filled")).collect())
        } else {
            (0..rows).map(reduce_row).collect()
        }
    }

    /// Step (3): `ColTor` — tournament over the row ciphertexts using the
    /// query's RGSW bits.
    ///
    /// # Errors
    /// Fails when the query carries too few selection bits.
    pub fn col_tor_step(
        &self,
        rows: Vec<BfvCiphertext>,
        query: &PirQuery,
    ) -> Result<BfvCiphertext, PirError> {
        col_tor(self.params.he(), rows, query.row_bits(), self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PirClient;
    use crate::db::Database;
    use rand::SeedableRng;

    fn records(params: &PirParams) -> Vec<Vec<u8>> {
        (0..params.num_records()).map(|i| format!("record number {i:04}").into_bytes()).collect()
    }

    #[test]
    fn end_to_end_retrieval_every_index() {
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(71)).unwrap();
        // Exhaustive over all 64 records.
        for target in 0..params.num_records() {
            let query = client.query(target).unwrap();
            let response = server.answer(client.public_keys(), &query).unwrap();
            let got = client.decode(&query, &response).unwrap();
            assert_eq!(&got[..recs[target].len()], &recs[target][..], "record {target}");
        }
    }

    #[test]
    fn all_tournament_orders_agree_end_to_end() {
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let mut server = PirServer::new(&params, db).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(72)).unwrap();
        let query = client.query(42).unwrap();
        let mut answers = Vec::new();
        for order in [
            TournamentOrder::Bfs,
            TournamentOrder::Dfs,
            TournamentOrder::Hs { subtree_depth: 1 },
            TournamentOrder::Hs { subtree_depth: 2 },
            TournamentOrder::Hs { subtree_depth: 3 },
        ] {
            server.set_tournament_order(order);
            answers.push(server.answer(client.public_keys(), &query).unwrap());
        }
        for a in &answers[1..] {
            assert_eq!(a, &answers[0]);
        }
    }

    #[test]
    fn batched_answers_match_individual_answers() {
        // §III-B functionally: one DB pass serves many clients, and each
        // response is bit-identical to the unbatched one.
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        let mut clients: Vec<_> = (0..3)
            .map(|i| PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(200 + i)).unwrap())
            .collect();
        let targets = [5usize, 41, 63];
        let queries: Vec<_> =
            clients.iter_mut().zip(targets).map(|(c, t)| c.query(t).unwrap()).collect();
        let requests: Vec<_> =
            clients.iter().zip(&queries).map(|(c, q)| (c.public_keys(), q)).collect();
        let batched = server.answer_batch(&requests).unwrap();
        for ((client, query), (response, target)) in
            clients.iter().zip(&queries).zip(batched.iter().zip(targets))
        {
            let solo = server.answer(client.public_keys(), query).unwrap();
            assert_eq!(response, &solo, "batched response diverged");
            let plain = client.decode(query, response).unwrap();
            assert_eq!(&plain[..recs[target].len()], &recs[target][..]);
        }
    }

    #[test]
    fn rowsel_thread_count_does_not_change_answers() {
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let mut server = PirServer::new(&params, db).unwrap();
        assert!(server.rowsel_threads() >= 1);
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(74)).unwrap();
        let query = client.query(17).unwrap();
        let mut answers = Vec::new();
        let mut batched = Vec::new();
        let requests = [(client.public_keys(), &query)];
        for threads in [1usize, 2, 64] {
            server.set_rowsel_threads(threads);
            assert_eq!(server.rowsel_threads(), threads);
            answers.push(server.answer(client.public_keys(), &query).unwrap());
            batched.push(server.answer_batch(&requests).unwrap().pop().unwrap());
        }
        for (a, b) in answers[1..].iter().zip(&batched[1..]) {
            assert_eq!(a, &answers[0], "RowSel sharding changed the answer");
            assert_eq!(b, &batched[0], "batched RowSel sharding changed the answer");
        }
        assert_eq!(answers[0], batched[0], "batched path diverged from single path");
    }

    #[test]
    fn row_shards_recombine_to_the_full_answer() {
        // Split the 2^d rows into 2^k aligned shards, answer the low
        // (d - k) tournament levels per shard, and finish with the high k
        // bits: the result must be bit-identical to the monolithic server.
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db.clone()).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(75)).unwrap();
        let he = params.he();
        for shard_bits in [1u32, 2] {
            let shards = 1usize << shard_bits;
            let sub_dims = params.dims() - shard_bits;
            let sub_params = PirParams::new(he.clone(), params.d0(), sub_dims).unwrap();
            let rows_per_shard = params.num_rows() / shards;
            let shard_servers: Vec<PirServer> = (0..shards)
                .map(|s| {
                    let shard_db = db.shard_rows(s * rows_per_shard, rows_per_shard);
                    PirServer::new(&sub_params, shard_db).unwrap()
                })
                .collect();
            let query = client.query(29).unwrap();
            let winners: Vec<BfvCiphertext> = shard_servers
                .iter()
                .map(|s| s.answer(client.public_keys(), &query).unwrap())
                .collect();
            let combined = crate::coltor::col_tor(
                he,
                winners,
                &query.row_bits()[sub_dims as usize..],
                TournamentOrder::Bfs,
            )
            .unwrap();
            let full = server.answer(client.public_keys(), &query).unwrap();
            assert_eq!(combined, full, "{shards}-way sharding diverged");
        }
    }

    #[test]
    fn wrong_geometry_rejected() {
        let params = PirParams::toy();
        let smaller = PirParams::new(params.he().clone(), 4, 2).unwrap();
        let db = Database::from_records(&smaller, &[]).unwrap();
        assert!(PirServer::new(&params, db).is_err());
    }

    #[test]
    fn response_noise_stays_within_budget() {
        // §II-C: response error ≈ RowSel error + O(d)·RGSW error, far below Δ/2.
        let params = PirParams::toy();
        let recs = records(&params);
        let db = Database::from_records(&params, &recs).unwrap();
        let server = PirServer::new(&params, db).unwrap();
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(73)).unwrap();
        let target = 9;
        let query = client.query(target).unwrap();
        let response = server.answer(client.public_keys(), &query).unwrap();
        let he = params.he();
        let expect = crate::db::plaintext_from_bytes(he, &recs[target]).unwrap();
        let budget = ive_he::noise::noise_budget_bits(he, client.secret_key(), &response, &expect);
        assert!(budget > 5.0, "remaining noise budget only {budget:.1} bits");
    }
}
