//! `ExpandQuery` — oblivious expansion of the packed query (§II-A, Fig. 2).
//!
//! From a single ciphertext encrypting `Δ·2^{-L}·X^{i*}` the server derives
//! `D0 = 2^L` ciphertexts forming the one-hot representation of `i*`.
//! Level `j` applies `Subs(·, N/2^j + 1)` to every ciphertext and splits it
//! into an even branch `ct + Subs(ct)` and an odd branch
//! `(ct − Subs(ct))·X^{-2^j}`; each level doubles the encoded value, which
//! the client's `2^{-L}` pre-scaling cancels exactly.

use ive_he::{BfvCiphertext, HeParams, SubsKey};
use ive_math::arena::KernelArena;
use ive_math::bit_reverse;
use ive_math::kernel::{self, VpeBackend};
use ive_math::rns::{Form, RnsPoly};

use crate::PirError;

/// The per-depth automorphism exponents used by `ExpandQuery`:
/// `r_j = N/2^j + 1` for `j = 0..levels` (§II-A).
pub fn expansion_exponents(n: usize, levels: u32) -> Vec<usize> {
    (0..levels).map(|j| n / (1usize << j) + 1).collect()
}

/// `NTT(X^{-2^j})` — the odd-branch monomial for level `j`.
///
/// `X^{-t} = -X^{N-t}` in the negacyclic ring.
pub fn x_neg_pow_ntt(he: &HeParams, t: usize) -> RnsPoly {
    let n = he.n();
    assert!(t >= 1 && t < n);
    let mut p = RnsPoly::zero(he.ring(), Form::Coeff);
    for (m, modulus) in he.ring().basis().moduli().iter().enumerate() {
        p.residue_mut(m)[n - t] = modulus.value() - 1;
    }
    p.to_ntt();
    p
}

/// Expands the packed query into `2^levels` ciphertexts; output slot `i`
/// encrypts (the pre-scaled image of) coefficient `i` of the query
/// polynomial.
///
/// `keys[j]` must be the `SubsKey` for exponent `N/2^j + 1`.
///
/// # Errors
/// Fails when too few keys are supplied or a key exponent mismatches.
pub fn expand_query(
    he: &HeParams,
    query: &BfvCiphertext,
    keys: &[SubsKey],
    levels: u32,
) -> Result<Vec<BfvCiphertext>, PirError> {
    expand_query_with(he, query, keys, levels, kernel::default_backend(), &mut KernelArena::new())
}

/// [`expand_query`] through an explicit kernel backend, with the
/// key-switch `Dcp` scratch drawn from `arena` (the serving path).
///
/// # Errors
/// Fails when too few keys are supplied or a key exponent mismatches.
pub fn expand_query_with(
    he: &HeParams,
    query: &BfvCiphertext,
    keys: &[SubsKey],
    levels: u32,
    backend: &dyn VpeBackend,
    arena: &mut KernelArena,
) -> Result<Vec<BfvCiphertext>, PirError> {
    let n = he.n();
    let exps = expansion_exponents(n, levels);
    if keys.len() < levels as usize {
        return Err(PirError::MissingKeys { got: keys.len(), need: levels as usize });
    }
    for (j, &r) in exps.iter().enumerate() {
        if keys[j].r() != r {
            return Err(PirError::InvalidParams(format!(
                "expansion key {j} has exponent {}, expected {r}",
                keys[j].r()
            )));
        }
    }

    let mut cts = vec![query.clone()];
    for (j, key) in keys.iter().enumerate().take(levels as usize) {
        let x_inv = x_neg_pow_ntt(he, 1 << j);
        let mut next = Vec::with_capacity(cts.len() * 2);
        for ct in &cts {
            let sub = key.apply_with(he, ct, backend, arena)?;
            let mut even = ct.clone();
            even.add_assign(&sub)?;
            let mut odd = ct.clone();
            odd.sub_assign(&sub)?;
            odd.mul_plain_assign_with(&x_inv, backend)?;
            next.push(even);
            next.push(odd);
        }
        cts = next;
    }

    // The DFS push order interleaves index bits MSB-first; undo with a
    // bit-reversal permutation so slot i encrypts coefficient i.
    let mut out: Vec<Option<BfvCiphertext>> = cts.into_iter().map(Some).collect();
    let mut reordered = Vec::with_capacity(out.len());
    for i in 0..out.len() {
        let src = bit_reverse(i, levels);
        reordered.push(out[src].take().expect("permutation visits each slot once"));
    }
    Ok(reordered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ive_he::{Plaintext, SecretKey};
    use ive_math::wide;
    use rand::SeedableRng;

    fn scaled_query(
        he: &HeParams,
        sk: &SecretKey,
        levels: u32,
        coeffs: &[u64],
        rng: &mut impl rand::Rng,
    ) -> BfvCiphertext {
        let m = Plaintext::new(he, coeffs.to_vec()).unwrap();
        let q = he.q_big();
        let inv = he.inv_two_pow(levels);
        let (hi, lo) = wide::mul_u128(he.delta(), inv);
        let scale = wide::div_rem_wide(hi, lo, q).1;
        BfvCiphertext::encrypt_scaled(he, sk, &m, scale, rng)
    }

    #[test]
    fn expansion_yields_one_hot() {
        let he = HeParams::toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let sk = SecretKey::generate(&he, &mut rng);
        let levels = 3u32;
        let keys: Vec<SubsKey> = expansion_exponents(he.n(), levels)
            .iter()
            .map(|&r| SubsKey::generate(&he, &sk, r, &mut rng))
            .collect();
        for target in [0usize, 1, 5, 7] {
            let mut coeffs = vec![0u64; he.n()];
            coeffs[target] = 1;
            let query = scaled_query(&he, &sk, levels, &coeffs, &mut rng);
            let expanded = expand_query(&he, &query, &keys, levels).unwrap();
            assert_eq!(expanded.len(), 8);
            for (i, ct) in expanded.iter().enumerate() {
                let m = ct.decrypt(&he, &sk);
                let expect = u64::from(i == target);
                assert_eq!(m.values()[0], expect, "slot {i}, target {target}");
                assert!(m.values()[1..].iter().all(|&v| v == 0), "slot {i} clean");
            }
        }
    }

    #[test]
    fn expansion_carries_arbitrary_values() {
        // Beyond one-hot: every slot receives its own packed coefficient.
        let he = HeParams::toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let sk = SecretKey::generate(&he, &mut rng);
        let levels = 2u32;
        let keys: Vec<SubsKey> = expansion_exponents(he.n(), levels)
            .iter()
            .map(|&r| SubsKey::generate(&he, &sk, r, &mut rng))
            .collect();
        let mut coeffs = vec![0u64; he.n()];
        let payload = [11u64, 22, 33, 44];
        coeffs[..4].copy_from_slice(&payload);
        let query = scaled_query(&he, &sk, levels, &coeffs, &mut rng);
        let expanded = expand_query(&he, &query, &keys, levels).unwrap();
        for (i, ct) in expanded.iter().enumerate() {
            assert_eq!(ct.decrypt(&he, &sk).values()[0], payload[i], "slot {i}");
        }
    }

    #[test]
    fn missing_keys_detected() {
        let he = HeParams::toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let sk = SecretKey::generate(&he, &mut rng);
        let query = scaled_query(&he, &sk, 3, &vec![0u64; he.n()], &mut rng);
        let err = expand_query(&he, &query, &[], 3).unwrap_err();
        assert!(matches!(err, PirError::MissingKeys { got: 0, need: 3 }));
    }

    #[test]
    fn wrong_key_exponent_detected() {
        let he = HeParams::toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        let sk = SecretKey::generate(&he, &mut rng);
        let query = scaled_query(&he, &sk, 1, &vec![0u64; he.n()], &mut rng);
        let bad = vec![SubsKey::generate(&he, &sk, 3, &mut rng)];
        assert!(expand_query(&he, &query, &bad, 1).is_err());
    }

    #[test]
    fn exponent_schedule_matches_paper() {
        // N+1, N/2+1, N/4+1, ... (§II-A).
        assert_eq!(expansion_exponents(4096, 3), vec![4097, 2049, 1025]);
    }
}
