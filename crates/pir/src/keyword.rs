//! Keyword PIR: a private key-value layer over the [`kspir`](crate::kspir)
//! scheme (the IM-PIR-style scenario — keyword queries over mutable
//! data).
//!
//! [`KsPirServer`](crate::KsPirServer) retrieves *scalars by index*; real
//! clients hold *keys*. This module closes the gap with cuckoo hashing:
//!
//! * The scalar space is carved into fixed **slot groups** of
//!   [`KvSchema::group_slots`] consecutive scalars: one nonzero
//!   fingerprint tag followed by the value's `⌈64 / log P⌉` limbs
//!   (little-endian, `log P` bits each).
//! * Two public hash functions (seeded, key-independent of the data) map
//!   every key to **two candidate buckets**. A build-time cuckoo
//!   insertion with eviction guarantees a present key occupies exactly
//!   one of them; if an insertion chain runs too long the builder retries
//!   with a fresh seed.
//! * `get(key)` therefore always fetches the same shape of data — the
//!   `2 × group_slots` scalars of both candidate buckets — regardless of
//!   whether or where the key is stored, so the access pattern leaks
//!   nothing about the key (each scalar fetch is a full KsPIR query).
//!
//! Collision handling is two-layered: *build* collisions (both buckets
//! full) are resolved by cuckoo eviction and, in the limit, a seed
//! retry; *lookup* collisions (a foreign key's fingerprint matching in a
//! candidate bucket) are bounded by the `1/(P-1)` tag false-positive
//! rate and documented at [`KvSchema::decode_group`].

use crate::kspir::KsPirParams;
use crate::PirError;

/// Cuckoo insertion: evictions allowed per insert before the build
/// declares the table too full and retries with a new seed.
const MAX_KICKS: usize = 128;

/// Seeds tried by [`KvStore::build`] before giving up.
const MAX_SEED_TRIES: u64 = 16;

/// SplitMix64 finalizer: the avalanche behind both hash functions.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a key under a seed: FNV-1a over the bytes, SplitMix64 finish.
fn mix_key(seed: u64, key: &[u8]) -> u64 {
    let mut h = seed ^ 0xCBF2_9CE4_8422_2325;
    for &b in key {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

/// The public layout of a keyword store: geometry, hash seed, and the
/// scalar encoding of entries. Client and server must agree on a schema
/// (the serving handshake ships the server's seed) for
/// [`KvSchema::candidates`] to point the client at the right buckets.
#[derive(Debug, Clone)]
pub struct KvSchema {
    params: KsPirParams,
    seed: u64,
    buckets: usize,
}

impl KvSchema {
    /// Builds the schema for the given geometry and hash seed.
    ///
    /// # Errors
    /// Fails when the plaintext modulus cannot carry fingerprint tags
    /// (`log P < 2`) or the scalar space is too small for two buckets.
    pub fn new(params: KsPirParams, seed: u64) -> Result<Self, PirError> {
        let p_bits = params.he().p_bits();
        if !(2..=63).contains(&p_bits) {
            return Err(PirError::InvalidParams(format!(
                "keyword store needs 2 <= log P <= 63, got {p_bits}"
            )));
        }
        let group = 1 + 64usize.div_ceil(p_bits as usize);
        let buckets = params.num_scalars() / group;
        if buckets < 2 {
            return Err(PirError::InvalidParams(format!(
                "{} scalars hold only {buckets} groups of {group}; cuckoo needs at least 2",
                params.num_scalars()
            )));
        }
        Ok(KvSchema { params, seed, buckets })
    }

    /// The underlying KsPIR geometry.
    #[inline]
    pub fn params(&self) -> &KsPirParams {
        &self.params
    }

    /// The public hash seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of buckets (slot groups) the scalar space holds.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Scalar slots per bucket: one fingerprint tag plus the value limbs.
    #[inline]
    pub fn group_slots(&self) -> usize {
        1 + self.value_limbs()
    }

    /// Limbs a `u64` value splits into (`⌈64 / log P⌉`).
    #[inline]
    pub fn value_limbs(&self) -> usize {
        64usize.div_ceil(self.params.he().p_bits() as usize)
    }

    /// The first scalar slot of `bucket`.
    #[inline]
    pub fn slot_of(&self, bucket: usize) -> usize {
        bucket * self.group_slots()
    }

    /// The two candidate buckets for a key, always distinct.
    pub fn candidates(&self, key: &[u8]) -> [usize; 2] {
        let b = self.buckets as u64;
        let h1 = mix_key(self.seed ^ 0x4B56_3148, key) % b;
        let mut h2 = mix_key(self.seed ^ 0x4B56_3248, key) % b;
        if h2 == h1 {
            h2 = (h1 + 1) % b;
        }
        [h1 as usize, h2 as usize]
    }

    /// The nonzero fingerprint tag of a key, in `[1, P)`.
    pub fn fingerprint(&self, key: &[u8]) -> u64 {
        1 + mix_key(self.seed ^ 0x4B56_4650, key) % (self.params.he().p() - 1)
    }

    /// Splits a value into its little-endian `log P`-bit limbs.
    pub fn encode_value(&self, value: u64) -> Vec<u64> {
        let p_bits = self.params.he().p_bits();
        let mask = (1u64 << p_bits) - 1;
        (0..self.value_limbs()).map(|i| (value >> (i as u32 * p_bits)) & mask).collect()
    }

    /// Reassembles a value from its limbs (inverse of
    /// [`KvSchema::encode_value`]).
    pub fn decode_value(&self, limbs: &[u64]) -> u64 {
        let p_bits = self.params.he().p_bits();
        // (limbs-1)·p_bits < 64 because limbs = ⌈64/p_bits⌉.
        limbs.iter().enumerate().fold(0u64, |acc, (i, &l)| acc | (l << (i as u32 * p_bits)))
    }

    /// Interprets one fetched bucket group for `key`: `Some(value)` when
    /// the fingerprint tag matches, `None` for an empty or foreign
    /// bucket. A foreign key colliding on the full tag is a false
    /// positive with probability `1/(P-1)` per bucket — the standard
    /// cuckoo-filter trade-off; grow `log P` to shrink it.
    pub fn decode_group(&self, key: &[u8], group: &[u64]) -> Option<u64> {
        if group.len() != self.group_slots() || group[0] != self.fingerprint(key) {
            return None;
        }
        Some(self.decode_value(&group[1..]))
    }
}

/// One stored entry: the key (needed to re-hash on eviction) + value.
#[derive(Debug, Clone)]
struct KvEntry {
    key: Vec<u8>,
    value: u64,
}

/// A cuckoo-hashed key-value table materialized as KsPIR scalars.
///
/// The store is the *server-side* source of truth: [`KvStore::scalars`]
/// feeds [`KsPirServer::new`](crate::KsPirServer::new), and every
/// mutation reports the exact scalar writes it performed so the serving
/// layer can re-pack only the touched chunks
/// ([`KsPirServer::with_updates`](crate::KsPirServer::with_updates)).
#[derive(Debug, Clone)]
pub struct KvStore {
    schema: KvSchema,
    slots: Vec<Option<KvEntry>>,
    len: usize,
}

impl KvStore {
    /// An empty store under the given schema.
    pub fn new(schema: KvSchema) -> Self {
        let buckets = schema.buckets();
        KvStore { schema, slots: vec![None; buckets], len: 0 }
    }

    /// Builds a store holding `entries`, retrying with fresh hash seeds
    /// until the cuckoo insertion succeeds.
    ///
    /// # Errors
    /// Fails when no seed places every entry (the table is genuinely too
    /// full — cuckoo load factors near 0.5 are safe for two hashes) or
    /// the geometry cannot host a keyword store at all.
    pub fn build(params: &KsPirParams, entries: &[(Vec<u8>, u64)]) -> Result<Self, PirError> {
        let mut last = None;
        for attempt in 0..MAX_SEED_TRIES {
            let schema = KvSchema::new(params.clone(), splitmix64(attempt))?;
            let mut store = KvStore::new(schema);
            match entries.iter().try_for_each(|(k, v)| store.insert(k, *v).map(|_| ())) {
                Ok(()) => return Ok(store),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            PirError::InvalidParams("keyword store build with no entries cannot fail".into())
        }))
    }

    /// The public layout (hash seed, geometry, encoding).
    #[inline]
    pub fn schema(&self) -> &KvSchema {
        &self.schema
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum entries the table can hold (one per bucket).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Local (non-private) lookup — the reference the PIR path is tested
    /// against.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        self.schema
            .candidates(key)
            .into_iter()
            .filter_map(|b| self.slots[b].as_ref())
            .find(|e| e.key == key)
            .map(|e| e.value)
    }

    /// Inserts or overwrites `key → value`, returning every
    /// `(scalar slot, scalar value)` write the mutation performed
    /// (eviction chains touch multiple buckets). A value `>= 2^64` cannot
    /// exist; any `u64` value is valid.
    ///
    /// # Errors
    /// Fails with [`PirError::TooManyRecords`] when the eviction chain
    /// exceeds its cap — the table is too full for this seed; rebuild
    /// with [`KvStore::build`] to rehash.
    pub fn insert(&mut self, key: &[u8], value: u64) -> Result<Vec<(usize, u64)>, PirError> {
        let cands = self.schema.candidates(key);
        // Overwrite in place when the key is already stored.
        for b in cands {
            if self.slots[b].as_ref().is_some_and(|e| e.key == key) {
                self.slots[b].as_mut().expect("checked occupied").value = value;
                return Ok(self.group_writes(&[b]));
            }
        }
        // Classic cuckoo: place in a free candidate or kick the occupant
        // to its other bucket, remembering the chain so a failed insert
        // can be rolled back exactly (no half-applied table).
        let mut chain: Vec<usize> = Vec::new();
        let mut entry = KvEntry { key: key.to_vec(), value };
        let mut target = cands[0];
        for _ in 0..MAX_KICKS {
            let cands = self.schema.candidates(&entry.key);
            if let Some(free) = cands.into_iter().find(|&b| self.slots[b].is_none()) {
                self.slots[free] = Some(entry);
                self.len += 1;
                let mut touched = Vec::with_capacity(chain.len() + 1);
                for b in chain {
                    push_unique(&mut touched, b);
                }
                push_unique(&mut touched, free);
                return Ok(self.group_writes(&touched));
            }
            let evicted = self.slots[target].replace(entry).expect("bucket was full");
            chain.push(target);
            // The evicted entry moves to its *other* candidate bucket.
            let alt = self.schema.candidates(&evicted.key);
            target = if alt[0] == target { alt[1] } else { alt[0] };
            entry = evicted;
        }
        // Rewind the displacement chain: each forward step was a
        // `replace`, so replaying the replaces in reverse restores every
        // entry to where it started.
        for &b in chain.iter().rev() {
            entry = self.slots[b].replace(entry).expect("chain bucket occupied");
        }
        Err(PirError::TooManyRecords { got: self.len + 1, capacity: self.capacity() })
    }

    /// Removes `key`, returning the scalar writes that zero its bucket,
    /// or `None` when the key is absent.
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<(usize, u64)>> {
        for b in self.schema.candidates(key) {
            if self.slots[b].as_ref().is_some_and(|e| e.key == key) {
                self.slots[b] = None;
                self.len -= 1;
                return Some(self.group_writes(&[b]));
            }
        }
        None
    }

    /// The scalar image of one bucket: fingerprint tag + value limbs, or
    /// all zeros when empty.
    pub fn group_scalars(&self, bucket: usize) -> Vec<u64> {
        match &self.slots[bucket] {
            Some(e) => {
                let mut g = Vec::with_capacity(self.schema.group_slots());
                g.push(self.schema.fingerprint(&e.key));
                g.extend(self.schema.encode_value(e.value));
                g
            }
            None => vec![0u64; self.schema.group_slots()],
        }
    }

    /// The full scalar image — what [`KsPirServer::new`](crate::KsPirServer::new)
    /// ingests. Slots past the last bucket (the remainder of the chunk
    /// geometry) stay zero.
    pub fn scalars(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.schema.params().num_scalars());
        for b in 0..self.schema.buckets() {
            out.extend(self.group_scalars(b));
        }
        out.resize(self.schema.params().num_scalars(), 0);
        out
    }

    /// The `(slot, value)` writes covering the given buckets.
    fn group_writes(&self, buckets: &[usize]) -> Vec<(usize, u64)> {
        let mut writes = Vec::with_capacity(buckets.len() * self.schema.group_slots());
        for &b in buckets {
            let base = self.schema.slot_of(b);
            for (i, v) in self.group_scalars(b).into_iter().enumerate() {
                writes.push((base + i, v));
            }
        }
        writes
    }
}

/// Appends `b` unless already present (tiny sets; no HashSet needed).
fn push_unique(v: &mut Vec<usize>, b: usize) {
    if !v.contains(&b) {
        v.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KsPirServer;

    fn sample_entries(count: usize) -> Vec<(Vec<u8>, u64)> {
        (0..count).map(|i| (format!("user:{i}").into_bytes(), i as u64 * 0x0101_0101 + 7)).collect()
    }

    #[test]
    fn build_get_roundtrip_under_half_load() {
        let params = KsPirParams::toy();
        let entries = sample_entries(90); // ~0.44 load over 204 buckets
        let store = KvStore::build(&params, &entries).unwrap();
        assert_eq!(store.len(), entries.len());
        for (k, v) in &entries {
            assert_eq!(store.get(k), Some(*v), "key {:?}", String::from_utf8_lossy(k));
        }
        assert_eq!(store.get(b"user:absent"), None);
    }

    #[test]
    fn value_limbs_roundtrip_extremes() {
        let schema = KvSchema::new(KsPirParams::toy(), 1).unwrap();
        for v in [0u64, 1, 0xFFFF, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(schema.decode_value(&schema.encode_value(v)), v);
        }
    }

    #[test]
    fn scalar_image_matches_group_decode() {
        let params = KsPirParams::toy();
        let entries = sample_entries(40);
        let store = KvStore::build(&params, &entries).unwrap();
        let schema = store.schema();
        let scalars = store.scalars();
        assert_eq!(scalars.len(), params.num_scalars());
        for (k, v) in &entries {
            let hit = schema.candidates(k).into_iter().find_map(|b| {
                let base = schema.slot_of(b);
                schema.decode_group(k, &scalars[base..base + schema.group_slots()])
            });
            assert_eq!(hit, Some(*v));
        }
        // Every scalar must be a legal Z_P value for the packer.
        let p = params.he().p();
        assert!(scalars.iter().all(|&s| s < p));
        KsPirServer::new(params, &scalars).expect("image must pack");
    }

    #[test]
    fn mutations_report_exactly_the_touched_slots() {
        let params = KsPirParams::toy();
        let mut store = KvStore::build(&params, &sample_entries(30)).unwrap();
        let before = store.scalars();
        let writes = store.insert(b"user:new", 424242).unwrap();
        let after = store.scalars();
        assert_eq!(store.get(b"user:new"), Some(424242));
        // Applying the reported writes to the old image gives the new one.
        let mut patched = before.clone();
        for &(slot, v) in &writes {
            patched[slot] = v;
        }
        assert_eq!(patched, after, "reported writes do not explain the image diff");
        // Overwrite touches one bucket; remove zeroes it.
        let w2 = store.insert(b"user:new", 7).unwrap();
        assert_eq!(w2.len(), store.schema().group_slots());
        let w3 = store.remove(b"user:new").expect("present");
        assert_eq!(w3.len(), store.schema().group_slots());
        assert!(w3.iter().all(|&(_, v)| v == 0));
        assert_eq!(store.remove(b"user:new"), None);
    }

    #[test]
    fn candidates_are_distinct_and_fingerprints_nonzero() {
        let schema = KvSchema::new(KsPirParams::toy(), 99).unwrap();
        for i in 0..200 {
            let key = format!("k{i}").into_bytes();
            let [a, b] = schema.candidates(&key);
            assert_ne!(a, b);
            assert!(a < schema.buckets() && b < schema.buckets());
            let fp = schema.fingerprint(&key);
            assert!(fp >= 1 && fp < schema.params().he().p());
        }
    }

    #[test]
    fn failed_insert_rolls_back_the_table() {
        let params = KsPirParams::toy();
        let schema = KvSchema::new(params, 5).unwrap();
        let mut store = KvStore::new(schema);
        let mut ok: Vec<(Vec<u8>, u64)> = Vec::new();
        let mut i = 0u64;
        loop {
            let key = format!("fill:{i}").into_bytes();
            let before = store.scalars();
            match store.insert(&key, i) {
                Ok(_) => ok.push((key, i)),
                Err(_) => {
                    assert_eq!(store.scalars(), before, "failed insert mutated the table");
                    break;
                }
            }
            i += 1;
            assert!(i < 10_000, "table never saturated");
        }
        assert_eq!(store.len(), ok.len());
        for (k, v) in &ok {
            assert_eq!(store.get(k), Some(*v), "rollback lost {:?}", String::from_utf8_lossy(k));
        }
    }

    #[test]
    fn overfull_table_rejected_not_looped() {
        let params = KsPirParams::toy();
        let schema = KvSchema::new(params.clone(), 3).unwrap();
        let entries = sample_entries(schema.buckets() + 1);
        assert!(matches!(KvStore::build(&params, &entries), Err(PirError::TooManyRecords { .. })));
    }
}
