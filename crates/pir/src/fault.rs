//! Deterministic failpoints: named injection sites the robustness tests
//! arm to make rare failures (I/O errors, torn frames, stalled syscalls,
//! panicking workers, failed commits) happen on demand, reproducibly.
//!
//! The registry is process-global and **disarmed by default**: every
//! site check is one relaxed atomic load and a branch, so production
//! and benchmark paths pay nothing measurable. A chaos test calls
//! [`arm`] with a seed, [`set`]s per-site probabilities and actions,
//! drives traffic, and [`disarm`]s — the seeded generator makes every
//! injection sequence replayable from the seed alone.
//!
//! Sites are compiled into the serving stack at its failure seams:
//!
//! | site                     | where it fires                              |
//! |--------------------------|---------------------------------------------|
//! | [`Site::IoRead`]         | TCP frame receive (`ive_serve::tcp`)         |
//! | [`Site::IoWrite`]        | TCP frame send (supports torn frames)        |
//! | [`Site::Fsync`]          | journal `append` durability sync             |
//! | [`Site::WorkerCompute`]  | batch worker compute (panic isolation)       |
//! | [`Site::EpochCommit`]    | engine epoch commit                          |
//!
//! Because the registry is global, tests that arm it must run in their
//! own process (a dedicated integration-test binary) or serialize on a
//! lock; arming it while unrelated tests exercise the same sites makes
//! their failures look spurious.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A named injection site in the serving stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Site {
    /// Transport-level frame receive.
    IoRead = 0,
    /// Transport-level frame send (the only site supporting
    /// [`Action::Tear`]).
    IoWrite = 1,
    /// Journal durability sync (`fsync`/`sync_data`).
    Fsync = 2,
    /// Batch worker compute (injected as a panic, to exercise
    /// `catch_unwind` isolation).
    WorkerCompute = 3,
    /// Database epoch commit.
    EpochCommit = 4,
}

/// Number of sites (array sizing).
const SITES: usize = 5;

impl Site {
    /// Every site, in discriminant order.
    pub const ALL: [Site; SITES] =
        [Site::IoRead, Site::IoWrite, Site::Fsync, Site::WorkerCompute, Site::EpochCommit];

    /// The site's stable config/report name.
    pub fn name(self) -> &'static str {
        match self {
            Site::IoRead => "io_read",
            Site::IoWrite => "io_write",
            Site::Fsync => "fsync",
            Site::WorkerCompute => "worker_compute",
            Site::EpochCommit => "epoch_commit",
        }
    }
}

/// What an armed site does when its probability fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fail the operation with an injected error (at
    /// [`Site::WorkerCompute`], a panic).
    Error,
    /// Stall the operation for the given duration, then let it proceed.
    Delay(Duration),
    /// Write a torn frame — a length prefix promising more bytes than
    /// follow — then fail. Only meaningful at [`Site::IoWrite`]; other
    /// sites treat it as [`Action::Error`].
    Tear,
}

#[derive(Debug, Clone, Copy)]
struct SiteConfig {
    /// Injection probability in parts per million of each check.
    prob_ppm: u32,
    action: Action,
}

struct Registry {
    /// SplitMix64 state; every probability draw advances it.
    rng: u64,
    sites: [Option<SiteConfig>; SITES],
}

/// Fast-path gate: checked before the registry lock is ever touched.
static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Registry> = Mutex::new(Registry { rng: 0, sites: [None; SITES] });
/// Per-site injection counters (kept outside the lock so reporting is
/// cheap and monotone even across re-arms within one process).
static INJECTED: [AtomicU64; SITES] = [const { AtomicU64::new(0) }; SITES];

/// One SplitMix64 step: the standard 64-bit mixer — tiny, seedable, and
/// good enough for fault scheduling (this is not cryptographic).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Arms the registry: clears every site config, seeds the injection
/// sequence, and opens the fast-path gate. Call [`set`] afterwards to
/// give sites a probability — an armed registry with no configured site
/// injects nothing.
pub fn arm(seed: u64) {
    let mut reg = REGISTRY.lock().expect("fault registry poisoned");
    reg.rng = seed;
    reg.sites = [None; SITES];
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the registry: closes the fast-path gate and clears configs.
/// Counters are preserved (they report what an armed run injected).
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    let mut reg = REGISTRY.lock().expect("fault registry poisoned");
    reg.sites = [None; SITES];
}

/// Whether the fast-path gate is open.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Configures one site: inject `action` with the given probability
/// (clamped to `[0, 1]`) at every check. Takes effect immediately.
pub fn set(site: Site, probability: f64, action: Action) {
    let prob_ppm = (probability.clamp(0.0, 1.0) * 1_000_000.0).round() as u32;
    let mut reg = REGISTRY.lock().expect("fault registry poisoned");
    reg.sites[site as usize] = Some(SiteConfig { prob_ppm, action });
}

/// Removes one site's config (the site stops injecting; others keep).
pub fn clear(site: Site) {
    let mut reg = REGISTRY.lock().expect("fault registry poisoned");
    reg.sites[site as usize] = None;
}

/// The per-site check every instrumented seam calls: draws against the
/// site's probability and returns the action to perform, if any.
/// Disarmed (the default), this is one relaxed load and a branch.
#[inline]
pub fn inject(site: Site) -> Option<Action> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    inject_slow(site)
}

#[cold]
fn inject_slow(site: Site) -> Option<Action> {
    let mut reg = REGISTRY.lock().expect("fault registry poisoned");
    let cfg = reg.sites[site as usize]?;
    let draw = (splitmix64(&mut reg.rng) % 1_000_000) as u32;
    if draw < cfg.prob_ppm {
        INJECTED[site as usize].fetch_add(1, Ordering::Relaxed);
        Some(cfg.action)
    } else {
        None
    }
}

/// I/O-shaped site check: sleeps out a [`Action::Delay`], converts
/// [`Action::Error`]/[`Action::Tear`] into an injected
/// [`std::io::Error`] the caller propagates like any real I/O failure.
///
/// # Errors
/// Returns the injected error when the site fires with a failing action.
pub fn fail_io(site: Site) -> std::io::Result<()> {
    match inject(site) {
        None => Ok(()),
        Some(Action::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(Action::Error) | Some(Action::Tear) => {
            Err(std::io::Error::other(format!("injected {} fault", site.name())))
        }
    }
}

/// Compute-shaped site check: sleeps out a delay, **panics** on a
/// failing action — the shape worker panic isolation must contain.
pub fn maybe_panic(site: Site) {
    match inject(site) {
        None => {}
        Some(Action::Delay(d)) => std::thread::sleep(d),
        Some(Action::Error) | Some(Action::Tear) => {
            panic!("injected {} panic", site.name())
        }
    }
}

/// How many times `site` has injected since process start (monotone
/// across arm/disarm cycles).
pub fn injected(site: Site) -> u64 {
    INJECTED[site as usize].load(Ordering::Relaxed)
}

/// Total injections across all sites since process start.
pub fn injected_total() -> u64 {
    Site::ALL.iter().map(|&s| injected(s)).sum()
}

#[cfg(test)]
mod tests {
    // These tests arm the process-global registry, so they must only
    // exercise sites no other test in this binary checks concurrently:
    // within `ive_pir`, only `Site::Fsync` is live (journal tests), so
    // everything here sticks to IoRead / WorkerCompute / EpochCommit.
    use super::*;

    #[test]
    fn disarmed_registry_injects_nothing() {
        disarm();
        assert!(!armed());
        for _ in 0..1000 {
            assert!(inject(Site::IoRead).is_none());
        }
        assert!(fail_io(Site::EpochCommit).is_ok());
    }

    #[test]
    fn seeded_injection_sequence_is_reproducible_and_probability_scales() {
        let run = |seed: u64, prob: f64| {
            arm(seed);
            set(Site::IoRead, prob, Action::Error);
            let hits: Vec<bool> = (0..2000).map(|_| inject(Site::IoRead).is_some()).collect();
            disarm();
            hits
        };
        let a = run(42, 0.25);
        let b = run(42, 0.25);
        assert_eq!(a, b, "same seed must inject at the same draws");
        let hits = a.iter().filter(|&&h| h).count();
        assert!((300..700).contains(&hits), "p=0.25 over 2000 draws hit {hits} times");
        let c = run(43, 0.25);
        assert_ne!(a, c, "different seeds must explore different schedules");
        let always = run(7, 1.0);
        assert!(always.iter().all(|&h| h), "p=1 must always fire");
        let never = run(7, 0.0);
        assert!(never.iter().all(|&h| !h), "p=0 must never fire");
    }

    #[test]
    fn actions_map_to_their_io_and_panic_shapes() {
        arm(1);
        set(Site::IoRead, 1.0, Action::Error);
        let err = fail_io(Site::IoRead).expect_err("must inject");
        assert!(err.to_string().contains("injected io_read fault"), "{err}");
        set(Site::IoRead, 1.0, Action::Delay(Duration::from_millis(1)));
        let t = std::time::Instant::now();
        fail_io(Site::IoRead).expect("delay lets the op proceed");
        assert!(t.elapsed() >= Duration::from_millis(1));
        set(Site::WorkerCompute, 1.0, Action::Error);
        let panicked = std::panic::catch_unwind(|| maybe_panic(Site::WorkerCompute));
        assert!(panicked.is_err(), "Error at a compute site must panic");
        disarm();
        // Counters survive disarm and saw each injection above.
        assert!(injected(Site::IoRead) >= 2);
        assert!(injected(Site::WorkerCompute) >= 1);
        assert!(injected_total() >= 3);
    }

    #[test]
    fn site_names_are_stable() {
        let names: Vec<&str> = Site::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["io_read", "io_write", "fsync", "worker_compute", "epoch_commit"]);
    }
}
