//! Online database updates: row deltas staged off the hot path and
//! applied to the flat limb-major buffer at epoch boundaries.
//!
//! The paper's deployment model (§V) assumes a long-running server, but a
//! frozen [`Database`](crate::Database) would force a full rebuild-and-restart for any
//! content change. This module makes the database *mutable under
//! traffic* without giving up the preprocessing invariant of §II-B:
//!
//! 1. A [`RecordUpdate`] (put or delete) arrives as raw bytes.
//! 2. [`UpdateLog::stage`] validates it and runs the **same CRT + NTT
//!    preprocessing as the offline load** (through the selected
//!    [`VpeBackend`](ive_math::kernel::VpeBackend)) on the staging
//!    thread — never on a query worker. The result is a
//!    [`PreparedUpdate`]: the record's `k·n` NTT-form limb words, ready
//!    to drop into the flat buffer.
//! 3. At an epoch boundary the owner drains the log and calls
//!    [`Database::apply_updates`](crate::Database::apply_updates), which splices the prepared words into
//!    the limb-major buffer and bumps the database [`Database::epoch`](crate::Database::epoch).
//!
//! Because a prepared put writes exactly the words
//! [`Database::from_records`](crate::Database::from_records) would have produced for the same bytes
//! (and a delete writes the all-zero record, `NTT(0) = 0`), a database
//! that has absorbed any sequence of committed updates is **word-for-word
//! identical** to one rebuilt from scratch at the same contents — so
//! answers are bit-identical too (pinned by `tests/update_props.rs`).
//!
//! Serving layers (see `ive_serve::ShardedEngine`) pair this with
//! epoch-versioned server handles: in-flight `RowSel` scans keep their
//! snapshot, new queries see the new epoch, and nobody observes a torn
//! write.
//!
//! # Example
//!
//! ```
//! use ive_pir::{Database, PirParams, RecordUpdate, UpdateLog};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = PirParams::toy();
//! let mut db = Database::from_records(&params, &[b"old".to_vec()])?;
//! assert_eq!(db.epoch(), 0);
//!
//! let log = UpdateLog::new(&params);
//! log.stage(RecordUpdate::put(0, b"new contents".to_vec()))?;
//! log.stage(RecordUpdate::delete(3))?;
//! let epoch = db.apply_updates(&log.drain())?;
//! assert_eq!(epoch, 1);
//!
//! // Identical to a cold rebuild at the same contents.
//! let rebuilt = Database::from_records(&params, &[b"new contents".to_vec()])?;
//! assert_eq!(db.as_words(), rebuilt.as_words());
//! # Ok(())
//! # }
//! ```

use std::sync::Mutex;

use ive_math::kernel::BackendKind;

use crate::db::plaintext_from_bytes;
use crate::params::PirParams;
use crate::PirError;

/// One row-level content delta, as it arrives from the outside world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordUpdate {
    /// Replace record `index` with `bytes` (zero-padded to the record
    /// capacity, exactly like [`Database::from_records`](crate::Database::from_records)).
    Put {
        /// Flat record index in `[0, D)`.
        index: usize,
        /// New payload; at most [`PirParams::record_bytes`] bytes.
        bytes: Vec<u8>,
    },
    /// Reset record `index` to the all-zero record (the same state a
    /// never-supplied trailing record has).
    Delete {
        /// Flat record index in `[0, D)`.
        index: usize,
    },
}

impl RecordUpdate {
    /// A put delta.
    pub fn put(index: usize, bytes: Vec<u8>) -> Self {
        RecordUpdate::Put { index, bytes }
    }

    /// A delete delta.
    pub fn delete(index: usize) -> Self {
        RecordUpdate::Delete { index }
    }

    /// The flat record index the delta targets.
    #[inline]
    pub fn index(&self) -> usize {
        match self {
            RecordUpdate::Put { index, .. } | RecordUpdate::Delete { index } => *index,
        }
    }
}

/// A delta after offline-style preprocessing: the record's `k·n`
/// NTT-form limb words, ready to splice into the flat buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedUpdate {
    index: usize,
    words: Vec<u64>,
}

impl PreparedUpdate {
    /// Validates and preprocesses one delta: range/size checks, then the
    /// CRT + NTT lift of §II-B through `backend` — the same
    /// transformation the offline load applies, so an applied put is
    /// indistinguishable from a rebuilt record.
    ///
    /// # Errors
    /// Returns [`PirError::IndexOutOfRange`] for an index beyond the
    /// geometry and [`PirError::RecordTooLarge`] for an oversized payload.
    pub fn prepare(
        params: &PirParams,
        update: &RecordUpdate,
        backend: BackendKind,
    ) -> Result<Self, PirError> {
        let index = update.index();
        if index >= params.num_records() {
            return Err(PirError::IndexOutOfRange { index, records: params.num_records() });
        }
        let he = params.he();
        let words = match update {
            RecordUpdate::Delete { .. } => {
                // NTT(0) = 0: the all-zero record needs no transform.
                vec![0u64; he.ring().basis().len() * he.n()]
            }
            RecordUpdate::Put { bytes, .. } => {
                if bytes.len() > params.record_bytes() {
                    return Err(PirError::RecordTooLarge {
                        index,
                        len: bytes.len(),
                        capacity: params.record_bytes(),
                    });
                }
                plaintext_from_bytes(he, bytes)?
                    .to_ntt_poly_with(he, backend.backend())
                    .into_words()
            }
        };
        Ok(PreparedUpdate { index, words })
    }

    /// The flat record index the delta targets.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The preprocessed limb words (`k·n`, residue-major, NTT form).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebases the delta onto a row shard whose rows start at
    /// `row_start`: the index becomes shard-local so the delta can be
    /// applied to a [`Database::shard_rows`](crate::Database::shard_rows) extract. The serving layer
    /// uses this to route each delta to the shard that owns its row.
    ///
    /// # Errors
    /// Returns [`PirError::InvalidParams`] when the delta's row lies
    /// before the shard (it belongs to another shard; routing it here
    /// would corrupt the wrong record).
    pub fn rebase_to_shard(mut self, row_start: usize, d0: usize) -> Result<Self, PirError> {
        self.index = self.index.checked_sub(row_start * d0).ok_or_else(|| {
            PirError::InvalidParams(format!(
                "delta for record {} precedes the shard starting at row {row_start} \
                 (record {})",
                self.index,
                row_start * d0
            ))
        })?;
        Ok(self)
    }
}

/// A thread-safe staging log for row deltas: ingest threads [`stage`]
/// (validate + NTT) concurrently, an epoch committer [`drain`]s.
///
/// The log itself never touches a [`Database`](crate::Database); it only guarantees that
/// everything it hands out is pre-validated and pre-transformed, so the
/// apply step is a pure memcpy and the epoch swap stays cheap.
///
/// [`stage`]: UpdateLog::stage
/// [`drain`]: UpdateLog::drain
#[derive(Debug)]
pub struct UpdateLog {
    params: PirParams,
    backend: BackendKind,
    staged: Mutex<Vec<PreparedUpdate>>,
}

impl UpdateLog {
    /// An empty log preparing deltas with the default kernel backend.
    pub fn new(params: &PirParams) -> Self {
        UpdateLog::with_backend(params, BackendKind::default())
    }

    /// An empty log preparing deltas through the given backend (backends
    /// are bit-identical; this is a speed knob like everywhere else).
    pub fn with_backend(params: &PirParams, backend: BackendKind) -> Self {
        UpdateLog { params: params.clone(), backend, staged: Mutex::new(Vec::new()) }
    }

    /// The geometry deltas are validated against.
    #[inline]
    pub fn params(&self) -> &PirParams {
        &self.params
    }

    /// Validates, preprocesses, and stages one delta. The NTT runs on
    /// *this* thread — the design point that keeps transforms off the
    /// query workers.
    ///
    /// # Errors
    /// Rejects out-of-range indices and oversized payloads; nothing is
    /// staged on error.
    pub fn stage(&self, update: RecordUpdate) -> Result<(), PirError> {
        let prepared = PreparedUpdate::prepare(&self.params, &update, self.backend)?;
        self.staged.lock().expect("update log poisoned").push(prepared);
        Ok(())
    }

    /// Stages a whole batch, all-or-nothing: every delta is validated and
    /// transformed before any is staged.
    ///
    /// # Errors
    /// Rejects the entire batch when any delta is invalid.
    pub fn stage_all(&self, updates: &[RecordUpdate]) -> Result<(), PirError> {
        let prepared = updates
            .iter()
            .map(|u| PreparedUpdate::prepare(&self.params, u, self.backend))
            .collect::<Result<Vec<_>, _>>()?;
        self.staged.lock().expect("update log poisoned").extend(prepared);
        Ok(())
    }

    /// Number of staged deltas awaiting an epoch boundary.
    pub fn len(&self) -> usize {
        self.staged.lock().expect("update log poisoned").len()
    }

    /// Whether no delta is staged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every staged delta, in staging order (later deltas to the
    /// same record win, matching apply order).
    pub fn drain(&self) -> Vec<PreparedUpdate> {
        std::mem::take(&mut *self.staged.lock().expect("update log poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{pack_record, Database};

    #[test]
    fn prepared_put_matches_offline_preprocessing() {
        let params = PirParams::toy();
        let bytes = b"delta payload".to_vec();
        for backend in [BackendKind::Scalar, BackendKind::Optimized, BackendKind::Simd] {
            let p = PreparedUpdate::prepare(&params, &RecordUpdate::put(5, bytes.clone()), backend)
                .unwrap();
            assert_eq!(p.index(), 5);
            let offline = pack_record(params.he(), &bytes).unwrap();
            assert_eq!(p.words(), offline.as_words(), "{backend:?} diverged from offline path");
        }
    }

    #[test]
    fn prepared_delete_is_all_zero() {
        let params = PirParams::toy();
        let p = PreparedUpdate::prepare(&params, &RecordUpdate::delete(0), BackendKind::default())
            .unwrap();
        assert!(p.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn out_of_range_and_oversized_rejected() {
        let params = PirParams::toy();
        let log = UpdateLog::new(&params);
        let oob = RecordUpdate::delete(params.num_records());
        assert!(matches!(log.stage(oob), Err(PirError::IndexOutOfRange { .. })));
        let fat = RecordUpdate::put(0, vec![0u8; params.record_bytes() + 1]);
        assert!(matches!(log.stage(fat), Err(PirError::RecordTooLarge { .. })));
        assert!(log.is_empty(), "failed stages must not leak into the log");
    }

    #[test]
    fn stage_all_is_atomic() {
        let params = PirParams::toy();
        let log = UpdateLog::new(&params);
        let batch = vec![
            RecordUpdate::put(1, b"ok".to_vec()),
            RecordUpdate::delete(params.num_records()), // invalid
        ];
        assert!(log.stage_all(&batch).is_err());
        assert!(log.is_empty(), "partial batch staged");
    }

    #[test]
    fn drain_empties_in_staging_order() {
        let params = PirParams::toy();
        let log = UpdateLog::new(&params);
        log.stage(RecordUpdate::put(2, b"a".to_vec())).unwrap();
        log.stage(RecordUpdate::put(2, b"b".to_vec())).unwrap();
        assert_eq!(log.len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
        // Later stage to the same index comes later, so it wins on apply.
        let mut db = Database::from_records(&params, &[]).unwrap();
        db.apply_updates(&drained).unwrap();
        let rebuilt = Database::from_records(&params, &[vec![], vec![], b"b".to_vec()]).unwrap();
        assert_eq!(db.as_words(), rebuilt.as_words());
    }

    #[test]
    fn rebase_to_shard_shifts_rows() {
        let params = PirParams::toy();
        let p = PreparedUpdate::prepare(
            &params,
            &RecordUpdate::put(2 * params.d0() + 3, b"x".to_vec()),
            BackendKind::default(),
        )
        .unwrap();
        let local = p.rebase_to_shard(2, params.d0()).unwrap();
        assert_eq!(local.index(), 3);
        // A delta belonging to an earlier shard is an error, not a wrap.
        let early =
            PreparedUpdate::prepare(&params, &RecordUpdate::delete(0), BackendKind::default())
                .unwrap();
        assert!(matches!(early.rebase_to_shard(1, params.d0()), Err(PirError::InvalidParams(_))));
    }
}
