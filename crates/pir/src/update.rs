//! Online database updates: row deltas staged off the hot path, made
//! durable in an on-disk [`Journal`], and applied to the copy-on-write
//! row pages at epoch boundaries.
//!
//! The paper's deployment model (§V) assumes a long-running server, but a
//! frozen [`Database`](crate::Database) would force a full rebuild-and-restart for any
//! content change. This module makes the database *mutable under
//! traffic* without giving up the preprocessing invariant of §II-B:
//!
//! 1. A [`RecordUpdate`] (put or delete) arrives as raw bytes.
//! 2. [`UpdateLog::stage`] validates it and runs the **same CRT + NTT
//!    preprocessing as the offline load** (through the selected
//!    [`VpeBackend`](ive_math::kernel::VpeBackend)) on the staging
//!    thread — never on a query worker. The result is a
//!    [`PreparedUpdate`]: the record's `k·n` NTT-form limb words, ready
//!    to drop into the flat buffer.
//! 3. At an epoch boundary the owner drains the log and calls
//!    [`Database::apply_updates`](crate::Database::apply_updates), which splices the prepared words into
//!    the touched row pages only (copy-on-write) and bumps the database
//!    [`Database::epoch`](crate::Database::epoch).
//!
//! For durability, the raw deltas can additionally be appended to a
//! [`Journal`] *before* staging: a length-delimited on-disk log of
//! canonical [`Tag::UpdateRow`](crate::wire::Tag::UpdateRow) frames,
//! truncated once the batch commits. After a crash,
//! [`Journal::open`] replays whatever was appended but never
//! checkpointed, and the §II-B rebuild invariant guarantees the replayed
//! database is word-identical to one that never crashed.
//!
//! Because a prepared put writes exactly the words
//! [`Database::from_records`](crate::Database::from_records) would have produced for the same bytes
//! (and a delete writes the all-zero record, `NTT(0) = 0`), a database
//! that has absorbed any sequence of committed updates is **word-for-word
//! identical** to one rebuilt from scratch at the same contents — so
//! answers are bit-identical too (pinned by `tests/update_props.rs`).
//!
//! Serving layers (see `ive_serve::ShardedEngine`) pair this with
//! epoch-versioned server handles: in-flight `RowSel` scans keep their
//! snapshot, new queries see the new epoch, and nobody observes a torn
//! write.
//!
//! # Example
//!
//! ```
//! use ive_pir::{Database, PirParams, RecordUpdate, UpdateLog};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = PirParams::toy();
//! let mut db = Database::from_records(&params, &[b"old".to_vec()])?;
//! assert_eq!(db.epoch(), 0);
//!
//! let log = UpdateLog::new(&params);
//! log.stage(RecordUpdate::put(0, b"new contents".to_vec()))?;
//! log.stage(RecordUpdate::delete(3))?;
//! let epoch = db.apply_updates(&log.drain())?;
//! assert_eq!(epoch, 1);
//!
//! // Identical to a cold rebuild at the same contents.
//! let rebuilt = Database::from_records(&params, &[b"new contents".to_vec()])?;
//! assert_eq!(db.to_words(), rebuilt.to_words());
//! # Ok(())
//! # }
//! ```

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use bytes::Bytes;

use ive_math::kernel::BackendKind;

use crate::db::plaintext_from_bytes;
use crate::params::PirParams;
use crate::wire;
use crate::PirError;

/// One row-level content delta, as it arrives from the outside world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordUpdate {
    /// Replace record `index` with `bytes` (zero-padded to the record
    /// capacity, exactly like [`Database::from_records`](crate::Database::from_records)).
    Put {
        /// Flat record index in `[0, D)`.
        index: usize,
        /// New payload; at most [`PirParams::record_bytes`] bytes.
        bytes: Vec<u8>,
    },
    /// Reset record `index` to the all-zero record (the same state a
    /// never-supplied trailing record has).
    Delete {
        /// Flat record index in `[0, D)`.
        index: usize,
    },
}

impl RecordUpdate {
    /// A put delta.
    pub fn put(index: usize, bytes: Vec<u8>) -> Self {
        RecordUpdate::Put { index, bytes }
    }

    /// A delete delta.
    pub fn delete(index: usize) -> Self {
        RecordUpdate::Delete { index }
    }

    /// The flat record index the delta targets.
    #[inline]
    pub fn index(&self) -> usize {
        match self {
            RecordUpdate::Put { index, .. } | RecordUpdate::Delete { index } => *index,
        }
    }
}

/// A delta after offline-style preprocessing: the record's `k·n`
/// NTT-form limb words, ready to splice into the flat buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedUpdate {
    index: usize,
    words: Vec<u64>,
}

impl PreparedUpdate {
    /// Validates and preprocesses one delta: range/size checks, then the
    /// CRT + NTT lift of §II-B through `backend` — the same
    /// transformation the offline load applies, so an applied put is
    /// indistinguishable from a rebuilt record.
    ///
    /// # Errors
    /// Returns [`PirError::IndexOutOfRange`] for an index beyond the
    /// geometry and [`PirError::RecordTooLarge`] for an oversized payload.
    pub fn prepare(
        params: &PirParams,
        update: &RecordUpdate,
        backend: BackendKind,
    ) -> Result<Self, PirError> {
        let index = update.index();
        if index >= params.num_records() {
            return Err(PirError::IndexOutOfRange { index, records: params.num_records() });
        }
        let he = params.he();
        let words = match update {
            RecordUpdate::Delete { .. } => {
                // NTT(0) = 0: the all-zero record needs no transform.
                vec![0u64; he.ring().basis().len() * he.n()]
            }
            RecordUpdate::Put { bytes, .. } => {
                if bytes.len() > params.record_bytes() {
                    return Err(PirError::RecordTooLarge {
                        index,
                        len: bytes.len(),
                        capacity: params.record_bytes(),
                    });
                }
                plaintext_from_bytes(he, bytes)?
                    .to_ntt_poly_with(he, backend.backend())
                    .into_words()
            }
        };
        Ok(PreparedUpdate { index, words })
    }

    /// The flat record index the delta targets.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The preprocessed limb words (`k·n`, residue-major, NTT form).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebases the delta onto a row shard whose rows start at
    /// `row_start`: the index becomes shard-local so the delta can be
    /// applied to a [`Database::shard_rows`](crate::Database::shard_rows) extract. The serving layer
    /// uses this to route each delta to the shard that owns its row.
    ///
    /// # Errors
    /// Returns [`PirError::InvalidParams`] when the delta's row lies
    /// before the shard (it belongs to another shard; routing it here
    /// would corrupt the wrong record).
    pub fn rebase_to_shard(mut self, row_start: usize, d0: usize) -> Result<Self, PirError> {
        self.index = self.index.checked_sub(row_start * d0).ok_or_else(|| {
            PirError::InvalidParams(format!(
                "delta for record {} precedes the shard starting at row {row_start} \
                 (record {})",
                self.index,
                row_start * d0
            ))
        })?;
        Ok(self)
    }
}

/// A thread-safe staging log for row deltas: ingest threads [`stage`]
/// (validate + NTT) concurrently, an epoch committer [`drain`]s.
///
/// The log itself never touches a [`Database`](crate::Database); it only guarantees that
/// everything it hands out is pre-validated and pre-transformed, so the
/// apply step is a pure memcpy and the epoch swap stays cheap.
///
/// [`stage`]: UpdateLog::stage
/// [`drain`]: UpdateLog::drain
#[derive(Debug)]
pub struct UpdateLog {
    params: PirParams,
    backend: BackendKind,
    staged: Mutex<Vec<PreparedUpdate>>,
}

impl UpdateLog {
    /// An empty log preparing deltas with the default kernel backend.
    pub fn new(params: &PirParams) -> Self {
        UpdateLog::with_backend(params, BackendKind::default())
    }

    /// An empty log preparing deltas through the given backend (backends
    /// are bit-identical; this is a speed knob like everywhere else).
    pub fn with_backend(params: &PirParams, backend: BackendKind) -> Self {
        UpdateLog { params: params.clone(), backend, staged: Mutex::new(Vec::new()) }
    }

    /// The geometry deltas are validated against.
    #[inline]
    pub fn params(&self) -> &PirParams {
        &self.params
    }

    /// Validates, preprocesses, and stages one delta. The NTT runs on
    /// *this* thread — the design point that keeps transforms off the
    /// query workers.
    ///
    /// # Errors
    /// Rejects out-of-range indices and oversized payloads; nothing is
    /// staged on error.
    pub fn stage(&self, update: RecordUpdate) -> Result<(), PirError> {
        let prepared = PreparedUpdate::prepare(&self.params, &update, self.backend)?;
        self.staged.lock().expect("update log poisoned").push(prepared);
        Ok(())
    }

    /// Stages a whole batch, all-or-nothing: every delta is validated and
    /// transformed before any is staged.
    ///
    /// # Errors
    /// Rejects the entire batch when any delta is invalid.
    pub fn stage_all(&self, updates: &[RecordUpdate]) -> Result<(), PirError> {
        let prepared = self.prepare_all(updates)?;
        self.stage_prepared(prepared);
        Ok(())
    }

    /// Validates and NTT-transforms a batch *without* staging it — the
    /// split entry point for callers that must interleave another
    /// durability step (journal append) between validation and
    /// visibility: prepare, persist, then [`UpdateLog::stage_prepared`].
    ///
    /// # Errors
    /// Rejects the entire batch when any delta is invalid.
    pub fn prepare_all(&self, updates: &[RecordUpdate]) -> Result<Vec<PreparedUpdate>, PirError> {
        updates.iter().map(|u| PreparedUpdate::prepare(&self.params, u, self.backend)).collect()
    }

    /// Stages already-prepared deltas (infallible: validation happened in
    /// [`UpdateLog::prepare_all`]).
    pub fn stage_prepared(&self, prepared: Vec<PreparedUpdate>) {
        self.staged.lock().expect("update log poisoned").extend(prepared);
    }

    /// Number of staged deltas awaiting an epoch boundary.
    pub fn len(&self) -> usize {
        self.staged.lock().expect("update log poisoned").len()
    }

    /// Whether no delta is staged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every staged delta, in staging order (later deltas to the
    /// same record win, matching apply order).
    pub fn drain(&self) -> Vec<PreparedUpdate> {
        std::mem::take(&mut *self.staged.lock().expect("update log poisoned"))
    }
}

/// A durable write-ahead journal for row deltas: a length-delimited
/// on-disk log of canonical [`Tag::UpdateRow`](crate::wire::Tag::UpdateRow)
/// frames.
///
/// Protocol: [`append`](Journal::append) a batch (fsynced) *before*
/// staging it, [`checkpoint`](Journal::checkpoint) (truncate) once the
/// batch has committed into the in-memory database. A crash between the
/// two leaves the batch on disk; the next [`Journal::open`] replays it.
/// Because replayed deltas run through the same `decode → prepare →
/// apply` pipeline as live ones, the §II-B rebuild invariant extends
/// across crashes: the recovered database is word-identical to one that
/// never went down (pinned by `tests/update_props.rs`).
///
/// On-disk layout, repeated per appended batch:
///
/// ```text
/// | u32 (BE) frame length | canonical UpdateRow frame bytes |
/// ```
///
/// A torn tail — a partial record from a crash mid-append — is detected
/// by length, truncated away, and never replayed (the batch was never
/// acknowledged). A *complete* record that fails to decode is corruption
/// and surfaces as an error instead of being skipped.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    pending: u64,
    seq: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path` and replays every intact
    /// batch, in append order. Returns the journal positioned for
    /// appending plus the replayed batches the caller must re-commit.
    ///
    /// # Errors
    /// Fails on I/O errors or on a complete-but-undecodable record
    /// (corruption, as opposed to a torn tail, which is truncated).
    pub fn open(
        path: impl Into<PathBuf>,
        params: &PirParams,
    ) -> Result<(Journal, Vec<Vec<RecordUpdate>>), PirError> {
        let path = path.into();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        // A freshly created journal is only durable once its *directory
        // entry* is — fsync the parent so the file itself survives a
        // crash, not just its (empty) contents.
        sync_parent_dir(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut batches = Vec::new();
        let mut good = 0usize;
        while raw.len() - good >= 4 {
            let len = u32::from_be_bytes(raw[good..good + 4].try_into().expect("4 bytes")) as usize;
            if raw.len() - good - 4 < len {
                break; // torn tail: the append never finished
            }
            let frame = Bytes::copy_from_slice(&raw[good + 4..good + 4 + len]);
            let (_seq, updates) = wire::decode_update_rows(params, &frame)?;
            batches.push(updates);
            good += 4 + len;
        }
        if good < raw.len() {
            file.set_len(good as u64)?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        let pending = batches.len() as u64;
        Ok((Journal { path, file, pending, seq: pending }, batches))
    }

    /// Appends one batch as a canonical `UpdateRow` frame and fsyncs it.
    /// An empty batch is a no-op (it would not open an epoch either).
    ///
    /// # Errors
    /// Fails on I/O errors or a batch over the per-frame delta cap.
    pub fn append(&mut self, updates: &[RecordUpdate]) -> Result<(), PirError> {
        if updates.is_empty() {
            return Ok(());
        }
        let frame = wire::encode_update_rows(self.seq, updates)?;
        let mut rec = Vec::with_capacity(4 + frame.len());
        rec.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        rec.extend_from_slice(&frame);
        let start = self.file.stream_position()?;
        let synced = self
            .file
            .write_all(&rec)
            .and_then(|()| crate::fault::fail_io(crate::fault::Site::Fsync))
            .and_then(|()| self.file.sync_data());
        if let Err(e) = synced {
            // The record's durability is unknown (write or fsync failed,
            // possibly ENOSPC): roll the file back to the pre-append
            // length so an unacknowledged batch can never replay, and
            // leave the cursor where the next append expects it.
            let _ = self.file.set_len(start);
            let _ = self.file.seek(SeekFrom::Start(start));
            return Err(e.into());
        }
        self.seq += 1;
        self.pending += 1;
        Ok(())
    }

    /// Truncates the journal after its batches have committed: the
    /// in-memory database now owns the state, so the log restarts empty.
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn checkpoint(&mut self) -> Result<(), PirError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        // Truncation rewrites the inode; sync the directory too so the
        // checkpoint itself is durable and a crash cannot resurrect
        // already-committed batches through a stale directory entry.
        sync_parent_dir(&self.path)?;
        self.pending = 0;
        Ok(())
    }

    /// Batches appended but not yet checkpointed.
    #[inline]
    pub fn pending_batches(&self) -> u64 {
        self.pending
    }

    /// The on-disk location of the log.
    #[inline]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Fsyncs `path`'s parent directory, so that metadata operations on the
/// file (creation, truncation) are durable — an fsync of the file alone
/// does not cover its directory entry. A pathless file (no parent) is a
/// no-op.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => File::open(dir)?.sync_all(),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{pack_record, Database};

    #[test]
    fn prepared_put_matches_offline_preprocessing() {
        let params = PirParams::toy();
        let bytes = b"delta payload".to_vec();
        for backend in
            [BackendKind::Scalar, BackendKind::Optimized, BackendKind::Simd, BackendKind::Avx512]
        {
            let p = PreparedUpdate::prepare(&params, &RecordUpdate::put(5, bytes.clone()), backend)
                .unwrap();
            assert_eq!(p.index(), 5);
            let offline = pack_record(params.he(), &bytes).unwrap();
            assert_eq!(p.words(), offline.as_words(), "{backend:?} diverged from offline path");
        }
    }

    #[test]
    fn prepared_delete_is_all_zero() {
        let params = PirParams::toy();
        let p = PreparedUpdate::prepare(&params, &RecordUpdate::delete(0), BackendKind::default())
            .unwrap();
        assert!(p.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn out_of_range_and_oversized_rejected() {
        let params = PirParams::toy();
        let log = UpdateLog::new(&params);
        let oob = RecordUpdate::delete(params.num_records());
        assert!(matches!(log.stage(oob), Err(PirError::IndexOutOfRange { .. })));
        let fat = RecordUpdate::put(0, vec![0u8; params.record_bytes() + 1]);
        assert!(matches!(log.stage(fat), Err(PirError::RecordTooLarge { .. })));
        assert!(log.is_empty(), "failed stages must not leak into the log");
    }

    #[test]
    fn stage_all_is_atomic() {
        let params = PirParams::toy();
        let log = UpdateLog::new(&params);
        let batch = vec![
            RecordUpdate::put(1, b"ok".to_vec()),
            RecordUpdate::delete(params.num_records()), // invalid
        ];
        assert!(log.stage_all(&batch).is_err());
        assert!(log.is_empty(), "partial batch staged");
    }

    #[test]
    fn drain_empties_in_staging_order() {
        let params = PirParams::toy();
        let log = UpdateLog::new(&params);
        log.stage(RecordUpdate::put(2, b"a".to_vec())).unwrap();
        log.stage(RecordUpdate::put(2, b"b".to_vec())).unwrap();
        assert_eq!(log.len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
        // Later stage to the same index comes later, so it wins on apply.
        let mut db = Database::from_records(&params, &[]).unwrap();
        db.apply_updates(&drained).unwrap();
        let rebuilt = Database::from_records(&params, &[vec![], vec![], b"b".to_vec()]).unwrap();
        assert_eq!(db.to_words(), rebuilt.to_words());
    }

    /// A collision-free scratch file path (no tempfile dependency).
    fn temp_journal(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ive-journal-{tag}-{}-{n}.log", std::process::id()))
    }

    #[test]
    fn journal_replays_batches_lost_before_commit() {
        let params = PirParams::toy();
        let path = temp_journal("crash");
        let batch1 = vec![RecordUpdate::put(2, b"first".to_vec()), RecordUpdate::delete(9)];
        let batch2 = vec![RecordUpdate::put(2, b"second wins".to_vec())];
        {
            let (mut journal, replayed) = Journal::open(&path, &params).unwrap();
            assert!(replayed.is_empty());
            journal.append(&batch1).unwrap();
            journal.append(&batch2).unwrap();
            assert_eq!(journal.pending_batches(), 2);
            // Simulated kill: dropped without checkpoint, commit never ran.
        }
        let (mut journal, replayed) = Journal::open(&path, &params).unwrap();
        assert_eq!(replayed, vec![batch1, batch2]);
        // Replay through the normal pipeline rebuilds the exact state.
        let mut db = Database::from_records(&params, &[]).unwrap();
        let log = UpdateLog::new(&params);
        for batch in &replayed {
            log.stage_all(batch).unwrap();
            db.apply_updates(&log.drain()).unwrap();
        }
        let rebuilt =
            Database::from_records(&params, &[vec![], vec![], b"second wins".to_vec()]).unwrap();
        assert_eq!(db.to_words(), rebuilt.to_words(), "replay diverged from rebuild");
        // After the recovered state commits, the checkpoint empties the log.
        journal.checkpoint().unwrap();
        let (_, replayed) = Journal::open(&path, &params).unwrap();
        assert!(replayed.is_empty(), "checkpoint must clear the journal");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let params = PirParams::toy();
        let path = temp_journal("torn");
        {
            let (mut journal, _) = Journal::open(&path, &params).unwrap();
            journal.append(&[RecordUpdate::put(0, b"intact".to_vec())]).unwrap();
        }
        // A crash mid-append: the length promises more bytes than follow.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&999u32.to_be_bytes()).unwrap();
            f.write_all(b"partial").unwrap();
        }
        let truncated_len = {
            let (mut journal, replayed) = Journal::open(&path, &params).unwrap();
            assert_eq!(replayed.len(), 1, "intact prefix must replay");
            assert_eq!(replayed[0], vec![RecordUpdate::put(0, b"intact".to_vec())]);
            // Appending after truncation lands cleanly after the prefix.
            journal.append(&[RecordUpdate::delete(1)]).unwrap();
            std::fs::metadata(&path).unwrap().len()
        };
        let (_, replayed) = Journal::open(&path, &params).unwrap();
        assert_eq!(replayed.len(), 2, "post-truncation append must be intact");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), truncated_len);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn complete_but_corrupt_record_is_an_error() {
        let params = PirParams::toy();
        let path = temp_journal("corrupt");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&path).unwrap();
            // Correct length prefix, garbage frame: corruption, not a torn
            // tail — replay must refuse rather than silently drop data.
            f.write_all(&8u32.to_be_bytes()).unwrap();
            f.write_all(b"garbage!").unwrap();
        }
        assert!(Journal::open(&path, &params).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rebase_to_shard_shifts_rows() {
        let params = PirParams::toy();
        let p = PreparedUpdate::prepare(
            &params,
            &RecordUpdate::put(2 * params.d0() + 3, b"x".to_vec()),
            BackendKind::default(),
        )
        .unwrap();
        let local = p.rebase_to_shard(2, params.d0()).unwrap();
        assert_eq!(local.index(), 3);
        // A delta belonging to an earlier shard is an error, not a wrap.
        let early =
            PreparedUpdate::prepare(&params, &RecordUpdate::delete(0), BackendKind::default())
                .unwrap();
        assert!(matches!(early.rebase_to_shard(1, params.d0()), Err(PirError::InvalidParams(_))));
    }
}
