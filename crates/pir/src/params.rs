//! PIR parameter sets: the multi-dimensional database geometry of §II-C
//! layered on top of the HE parameters of Table I.

use ive_he::HeParams;

use crate::PirError;

/// Parameters of the multi-dimensional OnionPIR-style scheme.
///
/// The database holds `D = D0 · 2^d` records, viewed as a
/// `(d+1)`-dimensional structure `D0 × 2 × 2 × ... × 2`: `RowSel` resolves
/// the initial dimension of size `D0` with expanded BFV ciphertexts, and
/// `ColTor` resolves the `d` binary dimensions with RGSW external products
/// (§II-C, Fig. 2).
#[derive(Debug, Clone)]
pub struct PirParams {
    he: HeParams,
    log_d0: u32,
    dims: u32,
}

impl PirParams {
    /// Builds a parameter set with first-dimension size `d0` (a power of
    /// two, at most `N`) and `dims` subsequent binary dimensions.
    ///
    /// # Errors
    /// Fails when `d0` is not a power of two in `[2, N]`.
    pub fn new(he: HeParams, d0: usize, dims: u32) -> Result<Self, PirError> {
        if d0 < 2 || !d0.is_power_of_two() || d0 > he.n() {
            return Err(PirError::InvalidParams(format!(
                "D0 = {d0} must be a power of two in [2, N = {}]",
                he.n()
            )));
        }
        Ok(PirParams { he, log_d0: d0.trailing_zeros(), dims })
    }

    /// Small parameters for fast tests: `N = 256`, `D0 = 8`, `d = 3`
    /// (64 records of 512 bytes).
    pub fn toy() -> Self {
        PirParams::new(HeParams::toy(), 8, 3).expect("toy geometry is valid")
    }

    /// The paper's geometry for a given database size in bytes:
    /// `N = 2^12`, `P = 2^32`, `D0 = 256`, with `d` chosen so that
    /// `D0 · 2^d` 16KB records cover the database (Table I, §III-A).
    ///
    /// # Errors
    /// Fails when the size is smaller than `D0` records.
    pub fn paper_for_db_bytes(db_bytes: u64) -> Result<Self, PirError> {
        let he = HeParams::paper();
        let record = (he.n() as u64 * he.p_bits() as u64) / 8;
        let d0 = 256u64;
        let records = db_bytes.div_ceil(record).max(d0);
        let dims = (records.div_ceil(d0) as f64).log2().ceil() as u32;
        PirParams::new(he, d0 as usize, dims)
    }

    /// The HE layer parameters.
    #[inline]
    pub fn he(&self) -> &HeParams {
        &self.he
    }

    /// First-dimension size `D0`.
    #[inline]
    pub fn d0(&self) -> usize {
        1 << self.log_d0
    }

    /// `log2(D0)` — the `ExpandQuery` tree depth.
    #[inline]
    pub fn log_d0(&self) -> u32 {
        self.log_d0
    }

    /// Number of binary dimensions `d` — the `ColTor` tournament depth.
    #[inline]
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Total records `D = D0 · 2^d`.
    #[inline]
    pub fn num_records(&self) -> usize {
        self.d0() << self.dims
    }

    /// Rows of the `RowSel` matrix view, `D / D0 = 2^d`.
    #[inline]
    pub fn num_rows(&self) -> usize {
        1 << self.dims
    }

    /// Bytes of payload per record (`N · log P / 8`; 16KB for Table I).
    #[inline]
    pub fn record_bytes(&self) -> usize {
        self.he.n() * self.he.p_bits() as usize / 8
    }

    /// Total database payload bytes.
    #[inline]
    pub fn db_bytes(&self) -> u64 {
        self.num_records() as u64 * self.record_bytes() as u64
    }

    /// Bytes of the *preprocessed* database (records lifted to `R_Q`,
    /// §II-B: `log Q / log P` times larger).
    #[inline]
    pub fn preprocessed_db_bytes(&self) -> u64 {
        self.num_records() as u64 * self.he.ring().poly_bytes() as u64
    }

    /// Splits a record index into `(row, col)` for the matrix view
    /// (`col` resolved by `RowSel`, `row` bits by `ColTor`).
    ///
    /// # Panics
    /// Panics when the index is out of range.
    pub fn split_index(&self, index: usize) -> (usize, usize) {
        assert!(index < self.num_records(), "record index out of range");
        (index / self.d0(), index % self.d0())
    }

    /// Inverse of [`PirParams::split_index`].
    pub fn join_index(&self, row: usize, col: usize) -> usize {
        row * self.d0() + col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_geometry() {
        let p = PirParams::toy();
        assert_eq!(p.d0(), 8);
        assert_eq!(p.dims(), 3);
        assert_eq!(p.num_records(), 64);
        assert_eq!(p.num_rows(), 8);
        assert_eq!(p.record_bytes(), 256 * 16 / 8);
    }

    #[test]
    fn paper_2gb_matches_motivation() {
        // 2GB DB with 16KB records: D = 2^17 = 256 · 2^9 (Fig. 4 setup).
        let p = PirParams::paper_for_db_bytes(2 << 30).unwrap();
        assert_eq!(p.d0(), 256);
        assert_eq!(p.dims(), 9);
        assert_eq!(p.record_bytes(), 16 * 1024);
        assert_eq!(p.db_bytes(), 2 << 30);
        // Preprocessing expands by logQ/logP = 3.5x (< the paper's 3.5x cap).
        assert_eq!(p.preprocessed_db_bytes(), 7 << 30);
    }

    #[test]
    fn table1_dims_range() {
        // Table I: D = 2^16..2^24 → d = 8..16 at D0 = 2^8.
        let small = PirParams::paper_for_db_bytes((1u64 << 16) * 16 * 1024).unwrap();
        assert_eq!(small.dims(), 8);
        let big = PirParams::paper_for_db_bytes((1u64 << 24) * 16 * 1024).unwrap();
        assert_eq!(big.dims(), 16);
    }

    #[test]
    fn split_join_roundtrip() {
        let p = PirParams::toy();
        for i in 0..p.num_records() {
            let (r, c) = p.split_index(i);
            assert!(r < p.num_rows() && c < p.d0());
            assert_eq!(p.join_index(r, c), i);
        }
    }

    #[test]
    fn invalid_d0_rejected() {
        let he = HeParams::toy();
        assert!(PirParams::new(he.clone(), 3, 2).is_err());
        assert!(PirParams::new(he.clone(), 1, 2).is_err());
        assert!(PirParams::new(he, 512, 2).is_err()); // > N = 256
    }
}
