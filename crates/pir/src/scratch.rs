//! Per-worker query scratch: the arena-backed buffers behind the
//! zero-allocation `RowSel` hot path.
//!
//! A [`QueryScratch`] bundles everything one serving worker reuses across
//! queries: a [`KernelArena`] for the kernel layer's transient buffers
//! (`Dcp` digit matrices, wide iCRT coefficients) and the flat `RowSel`
//! accumulator matrix. After the first query at a given geometry the
//! buffers are warm and [`crate::PirServer::row_sel_into`] performs **no
//! heap allocations at all** (enforced by the `rowsel_alloc` integration
//! test with a counting global allocator).
//!
//! Accumulator layout — row-major so worker threads can split disjoint
//! row chunks with `chunks_mut`, query-minor so one streamed database
//! record serves every query of a batch before the next record is
//! touched:
//!
//! ```text
//! acc: | row 0: q0.a[k·n] q0.b[k·n] q1.a … | row 1: … | … | row R-1: … |
//!        └──────── queries × 2·k·n words ───────┘
//! ```

use ive_he::BfvCiphertext;
use ive_math::arena::KernelArena;
use ive_math::rns::{Form, RingContext, RnsPoly};

/// Reusable per-worker buffers for the query pipeline.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Kernel-layer scratch (digit matrices, wide coefficients, ColTor
    /// temporaries). Public so callers can thread it into HE helpers.
    pub arena: KernelArena,
    /// Flat `RowSel` accumulators: `rows × queries × 2 × k × n`.
    acc: Vec<u64>,
    /// Per-thread partial accumulators for the reduced parallel scan
    /// (each shaped like `acc`); retained across scans so a warm
    /// parallel scan performs no data-dependent allocations.
    thread_acc: Vec<Vec<u64>>,
    rows: usize,
    queries: usize,
    /// Words per ciphertext accumulator (`2 · k · n`).
    ct_words: usize,
}

impl QueryScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    pub fn new() -> Self {
        QueryScratch::default()
    }

    /// Shapes and zeroes the accumulator matrix for a scan of `rows`
    /// database rows serving `queries` concurrent queries. Only grows the
    /// backing buffer when the geometry outgrows what is retained.
    pub(crate) fn reset_accumulators(&mut self, rows: usize, queries: usize, ct_words: usize) {
        let want = rows * queries * ct_words;
        self.acc.clear();
        self.acc.resize(want, 0);
        self.rows = rows;
        self.queries = queries;
        self.ct_words = ct_words;
    }

    /// The raw accumulator matrix (`rows × queries × 2·k·n` words); the
    /// scan chunks it by row ranges for its worker threads.
    pub(crate) fn acc_mut(&mut self) -> &mut [u64] {
        &mut self.acc
    }

    /// The accumulator matrix plus `count` zeroed per-thread partial
    /// accumulators of the same shape — the buffers behind the reduced
    /// parallel scan (each worker sums its share of the record dimension
    /// into its own partial; the scan then folds partials into `acc` with
    /// modular adds). Partials are retained across calls, so a warm scan
    /// at a fixed geometry reuses them without reallocating.
    pub(crate) fn acc_and_partials(&mut self, count: usize) -> (&mut [u64], &mut [Vec<u64>]) {
        let want = self.rows * self.queries * self.ct_words;
        if self.thread_acc.len() < count {
            self.thread_acc.resize_with(count, Vec::new);
        }
        for part in &mut self.thread_acc[..count] {
            part.clear();
            part.resize(want, 0);
        }
        (&mut self.acc, &mut self.thread_acc[..count])
    }

    /// Number of rows the accumulators currently hold.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of queries the accumulators currently hold.
    #[inline]
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// The `(a, b)` accumulator words of query `query` at row `row`
    /// (each `k · n` words, NTT form).
    ///
    /// # Panics
    /// Panics when the indices exceed the last scan's shape.
    pub fn row_words(&self, query: usize, row: usize) -> (&[u64], &[u64]) {
        assert!(query < self.queries && row < self.rows, "accumulator index out of shape");
        let start = (row * self.queries + query) * self.ct_words;
        let half = self.ct_words / 2;
        (&self.acc[start..start + half], &self.acc[start + half..start + self.ct_words])
    }

    /// Materializes query `query`'s row accumulators as ciphertexts for
    /// the `ColTor` stage (allocating — this is the seam between the flat
    /// kernel world and the polynomial algebra).
    pub fn row_ciphertexts(
        &self,
        ctx: &std::sync::Arc<RingContext>,
        query: usize,
    ) -> Vec<BfvCiphertext> {
        (0..self.rows)
            .map(|r| {
                let (a, b) = self.row_words(query, r);
                BfvCiphertext {
                    a: RnsPoly::from_words(ctx, Form::Ntt, a.to_vec())
                        .expect("accumulator has ring shape"),
                    b: RnsPoly::from_words(ctx, Form::Ntt, b.to_vec())
                        .expect("accumulator has ring shape"),
                }
            })
            .collect()
    }

    /// Bytes currently retained across the arena and accumulators
    /// (including the per-thread partials of the parallel scan).
    pub fn retained_bytes(&self) -> usize {
        self.arena.retained_bytes()
            + self.acc.capacity() * 8
            + self.thread_acc.iter().map(|p| p.capacity() * 8).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_shape_and_views() {
        let mut s = QueryScratch::new();
        s.reset_accumulators(4, 2, 6);
        assert_eq!(s.rows(), 4);
        assert_eq!(s.queries(), 2);
        assert_eq!(s.acc_mut().len(), 4 * 2 * 6);
        let (a, b) = s.row_words(1, 3);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        // Growing then shrinking keeps capacity (warm reuse).
        s.reset_accumulators(2, 1, 6);
        assert!(s.retained_bytes() >= 4 * 2 * 6 * 8);
    }

    #[test]
    fn thread_partials_match_shape_and_are_retained() {
        let mut s = QueryScratch::new();
        s.reset_accumulators(4, 2, 6);
        let (acc, partials) = s.acc_and_partials(3);
        assert_eq!(acc.len(), 4 * 2 * 6);
        assert_eq!(partials.len(), 3);
        for p in partials.iter_mut() {
            assert_eq!(p.len(), 4 * 2 * 6);
            assert!(p.iter().all(|&w| w == 0), "partials must start zeroed");
            p.fill(7);
        }
        // A later scan asking for fewer partials re-zeroes what it uses
        // and keeps the rest retained (capacity, not contents).
        let (_, partials) = s.acc_and_partials(2);
        assert_eq!(partials.len(), 2);
        assert!(partials.iter().all(|p| p.iter().all(|&w| w == 0)));
        assert!(s.retained_bytes() >= (1 + 3) * 4 * 2 * 6 * 8);
    }

    #[test]
    #[should_panic(expected = "out of shape")]
    fn out_of_shape_rejected() {
        let mut s = QueryScratch::new();
        s.reset_accumulators(2, 1, 4);
        let _ = s.row_words(0, 2);
    }
}
