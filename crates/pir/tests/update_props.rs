//! The live-update correctness property: a database that absorbed any
//! random sequence of put/delete deltas must be **word-for-word and
//! answer-for-answer identical** to one rebuilt from scratch at the same
//! contents — the invariant that lets a serving runtime ingest updates
//! forever without drifting from what a restart would produce.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use ive_pir::{BackendKind, Database, PirClient, PirParams, PirServer, RecordUpdate, UpdateLog};

/// Seed-derived random delta batches (multiple epochs' worth), with the
/// materialized record list they should produce.
fn random_history(params: &PirParams, seed: u64) -> (Vec<Vec<RecordUpdate>>, Vec<Vec<u8>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut records: Vec<Vec<u8>> =
        (0..params.num_records()).map(|i| format!("base record {i}").into_bytes()).collect();
    let batches = rng.gen_range(1..4usize);
    let history: Vec<Vec<RecordUpdate>> = (0..batches)
        .map(|_| {
            let deltas = rng.gen_range(1..6usize);
            (0..deltas)
                .map(|_| {
                    let index = rng.gen_range(0..params.num_records());
                    if rng.gen_bool(0.75) {
                        let len = rng.gen_range(0..=params.record_bytes().min(64));
                        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                        records[index] = bytes.clone();
                        RecordUpdate::put(index, bytes)
                    } else {
                        records[index] = Vec::new();
                        RecordUpdate::delete(index)
                    }
                })
                .collect()
        })
        .collect();
    (history, records)
}

proptest! {
    // Each case runs the full pipeline (keygen + answers), so keep the
    // case count modest; the delta space is still explored widely via
    // the seeded batch generator.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `apply_updates` then `answer` ≡ rebuild-from-scratch then
    /// `answer`, for every committed epoch in a random update history.
    #[test]
    fn updated_database_answers_like_a_cold_rebuild(seed in any::<u64>()) {
        let params = PirParams::toy();
        let (history, final_records) = random_history(&params, seed);
        let base: Vec<Vec<u8>> = (0..params.num_records())
            .map(|i| format!("base record {i}").into_bytes())
            .collect();
        let mut db = Database::from_records(&params, &base).expect("base fits");
        let log = UpdateLog::with_backend(
            &params,
            if seed % 2 == 0 { BackendKind::Optimized } else { BackendKind::Scalar },
        );
        for (i, batch) in history.iter().enumerate() {
            log.stage_all(batch).expect("valid by construction");
            let epoch = db.apply_updates(&log.drain()).expect("in range");
            prop_assert_eq!(epoch, i as u64 + 1);
        }
        let rebuilt = Database::from_records(&params, &final_records).expect("fits");
        // Word-identical flat buffers: the strongest form of the claim.
        prop_assert_eq!(db.as_words(), rebuilt.as_words(), "buffers diverged");

        // And answer-identical through the full pipeline, for a target
        // the history touched (when any) and one it may not have.
        let server = PirServer::new(&params, db).expect("geometry");
        let fresh = PirServer::new(&params, rebuilt).expect("geometry");
        let mut client = PirClient::new(
            &params,
            rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FFEE),
        ).expect("keygen");
        let touched = history.iter().flatten().next().map_or(0, RecordUpdate::index);
        for target in [touched, (touched + 17) % params.num_records()] {
            let query = client.query(target).expect("in range");
            let a = server.answer(client.public_keys(), &query).expect("pipeline");
            let b = fresh.answer(client.public_keys(), &query).expect("pipeline");
            prop_assert_eq!(&a, &b, "answers diverged at {}", target);
            let plain = client.decode(&query, &a).expect("decrypts");
            let want = &final_records[target];
            prop_assert_eq!(&plain[..want.len()], &want[..], "wrong contents at {}", target);
        }
    }
}
