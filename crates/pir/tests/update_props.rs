//! The live-update correctness property: a database that absorbed any
//! random sequence of put/delete deltas must be **word-for-word and
//! answer-for-answer identical** to one rebuilt from scratch at the same
//! contents — the invariant that lets a serving runtime ingest updates
//! forever without drifting from what a restart would produce.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use ive_pir::{
    BackendKind, Database, Journal, PirClient, PirParams, PirServer, RecordUpdate, UpdateLog,
};

/// Seed-derived random delta batches (multiple epochs' worth), with the
/// materialized record list they should produce.
fn random_history(params: &PirParams, seed: u64) -> (Vec<Vec<RecordUpdate>>, Vec<Vec<u8>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut records: Vec<Vec<u8>> =
        (0..params.num_records()).map(|i| format!("base record {i}").into_bytes()).collect();
    let batches = rng.gen_range(1..4usize);
    let history: Vec<Vec<RecordUpdate>> = (0..batches)
        .map(|_| {
            let deltas = rng.gen_range(1..6usize);
            (0..deltas)
                .map(|_| {
                    let index = rng.gen_range(0..params.num_records());
                    if rng.gen_bool(0.75) {
                        let len = rng.gen_range(0..=params.record_bytes().min(64));
                        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                        records[index] = bytes.clone();
                        RecordUpdate::put(index, bytes)
                    } else {
                        records[index] = Vec::new();
                        RecordUpdate::delete(index)
                    }
                })
                .collect()
        })
        .collect();
    (history, records)
}

proptest! {
    // Each case runs the full pipeline (keygen + answers), so keep the
    // case count modest; the delta space is still explored widely via
    // the seeded batch generator.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `apply_updates` then `answer` ≡ rebuild-from-scratch then
    /// `answer`, for every committed epoch in a random update history.
    #[test]
    fn updated_database_answers_like_a_cold_rebuild(seed in any::<u64>()) {
        let params = PirParams::toy();
        let (history, final_records) = random_history(&params, seed);
        let base: Vec<Vec<u8>> = (0..params.num_records())
            .map(|i| format!("base record {i}").into_bytes())
            .collect();
        let mut db = Database::from_records(&params, &base).expect("base fits");
        let log = UpdateLog::with_backend(
            &params,
            if seed.is_multiple_of(2) { BackendKind::Optimized } else { BackendKind::Scalar },
        );
        for (i, batch) in history.iter().enumerate() {
            log.stage_all(batch).expect("valid by construction");
            let epoch = db.apply_updates(&log.drain()).expect("in range");
            prop_assert_eq!(epoch, i as u64 + 1);
        }
        let rebuilt = Database::from_records(&params, &final_records).expect("fits");
        // Word-identical buffers: the strongest form of the claim. The
        // updated database got here through copy-on-write pages; only
        // the touched rows may have been copied.
        prop_assert_eq!(db.to_words(), rebuilt.to_words(), "buffers diverged");

        // And answer-identical through the full pipeline, for a target
        // the history touched (when any) and one it may not have.
        let server = PirServer::new(&params, db).expect("geometry");
        let fresh = PirServer::new(&params, rebuilt).expect("geometry");
        let mut client = PirClient::new(
            &params,
            rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FFEE),
        ).expect("keygen");
        let touched = history.iter().flatten().next().map_or(0, RecordUpdate::index);
        for target in [touched, (touched + 17) % params.num_records()] {
            let query = client.query(target).expect("in range");
            let a = server.answer(client.public_keys(), &query).expect("pipeline");
            let b = fresh.answer(client.public_keys(), &query).expect("pipeline");
            prop_assert_eq!(&a, &b, "answers diverged at {}", target);
            let plain = client.decode(&query, &a).expect("decrypts");
            let want = &final_records[target];
            prop_assert_eq!(&plain[..want.len()], &want[..], "wrong contents at {}", target);
        }
    }

    /// Copy-on-write commits: applying a random history against a live
    /// snapshot copies at most one page per delta (O(deltas), never
    /// O(database)), and the snapshot's contents stay frozen at the old
    /// epoch.
    #[test]
    fn cow_commits_copy_only_touched_pages(seed in any::<u64>()) {
        let params = PirParams::toy();
        let (history, final_records) = random_history(&params, seed);
        let base: Vec<Vec<u8>> = (0..params.num_records())
            .map(|i| format!("base record {i}").into_bytes())
            .collect();
        let mut db = Database::from_records(&params, &base).expect("base fits");
        let snapshot = db.clone(); // an epoch snapshot holding every page
        let log = UpdateLog::new(&params);
        for batch in &history {
            log.stage_all(batch).expect("valid by construction");
            db.apply_updates(&log.drain()).expect("in range");
        }
        let deltas: usize = history.iter().map(Vec::len).sum();
        let cow = db.cow_stats();
        prop_assert!(cow.pages_copied >= 1, "a shared page must be duplicated before a write");
        prop_assert!(
            cow.pages_copied as usize <= deltas,
            "commit copied {} pages for {} deltas — not O(deltas)",
            cow.pages_copied, deltas
        );
        prop_assert_eq!(cow.words_copied, cow.pages_copied * db.page_words() as u64);
        // The snapshot still reads as the base contents (isolation), and
        // the mutated lineage as the final contents.
        let base_db = Database::from_records(&params, &base).expect("fits");
        prop_assert_eq!(snapshot.to_words(), base_db.to_words(), "snapshot mutated");
        let rebuilt = Database::from_records(&params, &final_records).expect("fits");
        prop_assert_eq!(db.to_words(), rebuilt.to_words(), "CoW lineage diverged");
    }

    /// Crash-recovery: a journal holding fsync'd-but-uncommitted batches
    /// replays through the normal pipeline into a database word-identical
    /// to one that never crashed.
    #[test]
    fn journal_replay_rebuilds_word_identical_state(seed in any::<u64>()) {
        let params = PirParams::toy();
        let (history, final_records) = random_history(&params, seed);
        let path = std::env::temp_dir().join(format!(
            "ive-props-journal-{}-{seed:016x}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let (mut journal, replayed) = Journal::open(&path, &params).expect("open fresh");
            prop_assert!(replayed.is_empty());
            for batch in &history {
                journal.append(batch).expect("append");
            }
            prop_assert_eq!(journal.pending_batches(), history.len() as u64);
            // Simulated kill: dropped before any batch committed.
        }
        let (mut journal, replayed) = Journal::open(&path, &params).expect("recover");
        prop_assert_eq!(&replayed, &history, "journal must replay exactly what was appended");
        let base: Vec<Vec<u8>> = (0..params.num_records())
            .map(|i| format!("base record {i}").into_bytes())
            .collect();
        let mut db = Database::from_records(&params, &base).expect("base fits");
        let log = UpdateLog::new(&params);
        for batch in &replayed {
            log.stage_all(batch).expect("journaled batches always re-stage");
            db.apply_updates(&log.drain()).expect("in range");
        }
        journal.checkpoint().expect("checkpoint after recovery");
        let rebuilt = Database::from_records(&params, &final_records).expect("fits");
        prop_assert_eq!(db.to_words(), rebuilt.to_words(), "replay diverged from rebuild");
        let (_, replayed) = Journal::open(&path, &params).expect("reopen");
        prop_assert!(replayed.is_empty(), "checkpoint must clear the journal");
        let _ = std::fs::remove_file(&path);
    }
}
