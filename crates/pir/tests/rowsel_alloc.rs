//! Proof of the zero-allocation hot path: once a worker's
//! [`QueryScratch`] is warm, `RowSel` — the per-query database scan, the
//! dominant cost at scale — performs **zero heap allocations**.
//!
//! A counting global allocator wraps the system allocator; the test warms
//! the scratch with two queries, then asserts that further scans allocate
//! nothing. This file holds a single test on purpose: the counter is
//! process-global and Cargo gives each integration-test binary its own
//! process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ive_pir::{BackendKind, Database, PirClient, PirParams, PirServer, QueryScratch};
use rand::SeedableRng;

/// Counts every allocation and reallocation routed through the global
/// allocator (deallocations are free and not counted).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_row_sel_performs_zero_heap_allocations() {
    let params = PirParams::toy();
    let records: Vec<Vec<u8>> =
        (0..params.num_records()).map(|i| format!("alloc-test record {i}").into_bytes()).collect();
    let db = Database::from_records(&params, &records).expect("records fit");
    let mut server = PirServer::new(&params, db).expect("geometry matches");
    // Threads off: spawning workers allocates by definition; the claim
    // under test is about the scan itself (serving workers run with
    // rowsel_threads = 1 and parallelize across queries instead).
    server.set_rowsel_threads(1);

    let mut client =
        PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(4711)).expect("keygen");
    let query = client.query(23).expect("in range");
    let expanded = server.expand(client.public_keys(), &query).expect("keys ok");
    let batch: Vec<Vec<_>> = vec![expanded.clone(), expanded.clone()];

    // `Simd` resolves to the AVX2 kernels where the host has them and to
    // the optimized fallback elsewhere; either way the warm scan must
    // stay allocation-free.
    for backend in
        [BackendKind::Optimized, BackendKind::Scalar, BackendKind::Simd, BackendKind::Avx512]
    {
        server.set_backend(backend);
        let mut scratch = QueryScratch::new();

        // Warm-up: the first scans size the flat accumulators.
        server.row_sel_into(&expanded, &mut scratch).expect("warm-up 1");
        server.row_sel_into(&expanded, &mut scratch).expect("warm-up 2");

        let before = allocations();
        for _ in 0..3 {
            server.row_sel_into(&expanded, &mut scratch).expect("warm scan");
        }
        let during = allocations() - before;
        assert_eq!(
            during, 0,
            "warm single-query RowSel allocated {during} times on the {backend} backend"
        );

        // The batched scan reuses the same scratch: one warm-up at the
        // new batch geometry, then allocation-free.
        server.row_sel_batch_into(&batch, &mut scratch).expect("batch warm-up");
        let before = allocations();
        server.row_sel_batch_into(&batch, &mut scratch).expect("warm batch scan");
        let during = allocations() - before;
        assert_eq!(
            during, 0,
            "warm batched RowSel allocated {during} times on the {backend} backend"
        );
    }

    // The *parallel* scan: spawning scoped workers allocates a fixed
    // per-spawn overhead, but the scan body itself must stay
    // allocation-free once the per-thread partial accumulators are warm.
    // Two properties pin that down: repeated warm scans allocate the
    // same flat amount (no drift), and that amount is bounded by a small
    // per-thread constant (a per-record or per-element allocation over
    // the 64-record toy database would blow far past it).
    server.set_backend(BackendKind::Optimized);
    for threads in [2usize, 4, 7] {
        server.set_rowsel_threads(threads);
        let mut scratch = QueryScratch::new();
        server.row_sel_into(&expanded, &mut scratch).expect("parallel warm-up 1");
        server.row_sel_into(&expanded, &mut scratch).expect("parallel warm-up 2");
        let per_run: Vec<u64> = (0..3)
            .map(|_| {
                let before = allocations();
                server.row_sel_into(&expanded, &mut scratch).expect("warm parallel scan");
                allocations() - before
            })
            .collect();
        assert!(
            per_run.windows(2).all(|w| w[0] == w[1]),
            "warm parallel scan allocation count drifts at {threads} threads: {per_run:?}"
        );
        assert!(
            per_run[0] <= 8 * threads as u64,
            "warm parallel scan at {threads} threads allocated {} times — more than spawn \
             overhead allows, so the scan body is allocating",
            per_run[0]
        );

        server.row_sel_batch_into(&batch, &mut scratch).expect("parallel batch warm-up");
        let before = allocations();
        server.row_sel_batch_into(&batch, &mut scratch).expect("warm parallel batch scan");
        let batch_run = allocations() - before;
        assert_eq!(
            batch_run, per_run[0],
            "doubling the queries changed the warm parallel scan's allocation count at \
             {threads} threads — a per-query allocation leaked into the hot path"
        );
    }

    // Bit-identity across the full matrix: every backend × thread count
    // must produce the same answer ciphertext as the single-thread
    // scalar reference (7 never divides the toy geometry, so the ragged
    // partition is exercised).
    server.set_backend(BackendKind::Scalar);
    server.set_rowsel_threads(1);
    let reference = server.answer(client.public_keys(), &query).expect("reference answer");
    for backend in [
        BackendKind::Scalar,
        BackendKind::Optimized,
        BackendKind::Simd,
        BackendKind::Avx512,
        BackendKind::Auto,
    ] {
        server.set_backend(backend);
        for threads in [1usize, 2, 4, 7] {
            server.set_rowsel_threads(threads);
            let got = server.answer(client.public_keys(), &query).expect("answer");
            assert_eq!(
                got, reference,
                "answer diverged from the scalar single-thread reference on the {backend} \
                 backend at {threads} RowSel threads"
            );
        }
    }

    // Sanity: the accumulators hold a real answer — decode through the
    // normal pipeline and compare against the direct path.
    server.set_backend(BackendKind::Auto);
    server.set_rowsel_threads(1);
    let mut scratch = QueryScratch::new();
    let answer = server.answer_with(client.public_keys(), &query, &mut scratch).expect("pipeline");
    let plain = client.decode(&query, &answer).expect("decode");
    assert_eq!(&plain[..records[23].len()], &records[23][..]);
}
