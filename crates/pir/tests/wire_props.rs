//! Property-based coverage for every wire frame: canonical round-trips
//! plus truncation / bad-magic / wrong-tag / wrong-version fuzzing.
//!
//! The round-trip properties pin the *canonical encoding* invariant the
//! serving runtime relies on: `encode(decode(bytes)) == bytes` for every
//! frame a decoder accepts, so a server can cache, re-frame, and forward
//! material without semantic drift.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

use ive_he::{BfvCiphertext, Plaintext, RgswCiphertext, SecretKey};
use ive_math::rns::{Form, RnsPoly};
use ive_pir::kspir::{KsPirClient, KsPirParams};
use ive_pir::wire;
use ive_pir::{KvSchema, PirClient, PirParams};

/// Shared fixtures, built once: toy parameters, a client, and one encoded
/// instance of each frame type.
struct Fixture {
    params: PirParams,
    sk: SecretKey,
    query_bytes: Bytes,
    keys_bytes: Bytes,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let params = PirParams::toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x317E_57A7E);
        let sk = SecretKey::generate(params.he(), &mut rng);
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(99))
            .expect("toy keygen succeeds");
        let query = client.query(3).expect("in range");
        Fixture {
            query_bytes: wire::encode_query(&query),
            keys_bytes: wire::encode_client_keys(client.public_keys()),
            params,
            sk,
        }
    })
}

/// Keyword-side fixtures: toy `KsPirParams`, a registered client, and one
/// encoded instance of each keyword frame.
struct KsFixture {
    params: KsPirParams,
    hello_bytes: Bytes,
    query_bytes: Bytes,
    response_bytes: Bytes,
    compressed_bytes: Bytes,
    kv_update_bytes: Bytes,
}

fn ks_fixture() -> &'static KsFixture {
    static FIX: OnceLock<KsFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let params = KsPirParams::toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED_CAFE);
        let mut client = KsPirClient::new(&params, rand::rngs::StdRng::seed_from_u64(11))
            .expect("toy keygen succeeds");
        let query = client.query(5).expect("in range");
        let he = params.he();
        let sk = SecretKey::generate(he, &mut rng);
        let vals: Vec<u64> = (0..he.n()).map(|_| rng.gen_range(0..he.p())).collect();
        let ct =
            BfvCiphertext::encrypt(he, &sk, &Plaintext::new(he, vals).expect("below P"), &mut rng);
        let switched = ive_he::modswitch::switch_to_first_prime(he, &ct).expect("switches");
        KsFixture {
            hello_bytes: wire::encode_ks_hello(client.public_keys()),
            query_bytes: wire::encode_ks_query(3, 4, &query),
            response_bytes: wire::encode_ks_response(4, &ct),
            compressed_bytes: wire::encode_compressed_response(4, &switched),
            kv_update_bytes: wire::encode_kv_update(9, b"fixture-key", Some(77)).expect("valid"),
            params,
        }
    })
}

fn random_poly(rng: &mut rand::rngs::StdRng, form: Form) -> RnsPoly {
    let fix = fixture();
    RnsPoly::sample_uniform(fix.params.he().ring(), form, rng)
}

/// A seed-derived batch of valid row deltas (puts with random payloads
/// up to the record capacity, deletes, in-range indices).
fn random_updates(params: &PirParams, seed: u64) -> Vec<ive_pir::RecordUpdate> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let count = rng.gen_range(0..8usize);
    (0..count)
        .map(|_| {
            let index = rng.gen_range(0..params.num_records());
            if rng.gen_bool(0.7) {
                let len = rng.gen_range(0..=params.record_bytes().min(48));
                ive_pir::RecordUpdate::put(index, (0..len).map(|_| rng.gen()).collect())
            } else {
                ive_pir::RecordUpdate::delete(index)
            }
        })
        .collect()
}

/// A seed-derived arbitrary-but-valid [`wire::StatsReport`]: any counter
/// values, histogram lengths up to the wire caps.
fn random_stats_report(seed: u64) -> wire::StatsReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let latency_buckets = {
        let len = rng.gen_range(0..=wire::MAX_STATS_BUCKETS);
        (0..len).map(|_| rng.gen()).collect()
    };
    let stages = {
        let count = rng.gen_range(0..=wire::MAX_STATS_STAGES);
        (0..count)
            .map(|_| {
                let bucket_len = rng.gen_range(0..=wire::MAX_STATS_BUCKETS);
                wire::StageReport {
                    count: rng.gen(),
                    sum_us: rng.gen(),
                    max_us: rng.gen(),
                    buckets: (0..bucket_len).map(|_| rng.gen()).collect(),
                }
            })
            .collect()
    };
    wire::StatsReport {
        queries: rng.gen(),
        errors: rng.gen(),
        batches: rng.gen(),
        batch_query_sum: rng.gen(),
        batches_multi: rng.gen(),
        max_batch: rng.gen(),
        queue_depth: rng.gen(),
        queue_depth_max: rng.gen(),
        update_batches: rng.gen(),
        updates_applied: rng.gen(),
        epoch: rng.gen(),
        uptime_us: rng.gen(),
        latency_sum_us: rng.gen(),
        latency_max_us: rng.gen(),
        latency_buckets,
        stages,
        residue_ntts: rng.gen(),
        pointwise_macs: rng.gen(),
        icrt_coeffs: rng.gen(),
        auto_coeffs: rng.gen(),
        scan_bytes: rng.gen(),
        scan_ns: rng.gen(),
        slow_queries: rng.gen(),
        busy_rejections: rng.gen(),
        session_evictions: rng.gen(),
        timeouts: rng.gen(),
        retries: rng.gen(),
        reconnects: rng.gen(),
        worker_panics: rng.gen(),
        drained_jobs: rng.gen(),
    }
}

fn random_bfv(rng: &mut rand::rngs::StdRng) -> BfvCiphertext {
    let fix = fixture();
    let he = fix.params.he();
    let vals: Vec<u64> = (0..he.n()).map(|_| rng.gen_range(0..he.p())).collect();
    let m = Plaintext::new(he, vals).expect("below P");
    BfvCiphertext::encrypt(he, &fix.sk, &m, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn poly_roundtrip_is_canonical(seed in any::<u64>(), ntt in any::<bool>()) {
        let fix = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let poly = random_poly(&mut rng, if ntt { Form::Ntt } else { Form::Coeff });
        let mut buf = BytesMut::new();
        wire::write_poly(&mut buf, &poly);
        let bytes = buf.freeze();
        let mut cursor = bytes.clone();
        let back = wire::read_poly(fix.params.he(), &mut cursor).expect("own encoding decodes");
        prop_assert_eq!(&back, &poly);
        let mut again = BytesMut::new();
        wire::write_poly(&mut again, &back);
        prop_assert_eq!(&again.freeze()[..], &bytes[..], "encoding not canonical");
    }

    #[test]
    fn bfv_and_response_roundtrip(seed in any::<u64>()) {
        let fix = fixture();
        let he = fix.params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = random_bfv(&mut rng);
        let bytes = wire::encode_response(&ct);
        let back = wire::decode_response(he, &bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &ct);
        prop_assert_eq!(&wire::encode_response(&back)[..], &bytes[..]);
    }

    #[test]
    fn rgsw_roundtrip(seed in any::<u64>(), bit in any::<bool>()) {
        let fix = fixture();
        let he = fix.params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = RgswCiphertext::encrypt_bit(he, &fix.sk, bit, &mut rng);
        let mut buf = BytesMut::new();
        wire::write_rgsw(&mut buf, &ct);
        let bytes = buf.freeze();
        let mut cursor = bytes.clone();
        let back = wire::read_rgsw(he, &mut cursor).expect("own encoding decodes");
        let mut again = BytesMut::new();
        wire::write_rgsw(&mut again, &back);
        prop_assert_eq!(&again.freeze()[..], &bytes[..], "encoding not canonical");
    }

    #[test]
    fn session_frame_ids_roundtrip(session in any::<u64>(), request in any::<u64>()) {
        let fix = fixture();
        let he = fix.params.he();
        let query = wire::decode_query(he, &fix.query_bytes).expect("fixture decodes");
        let sq = wire::encode_session_query(session, request, &query);
        let (s, r, q) = wire::decode_session_query(he, &sq).expect("own encoding decodes");
        prop_assert_eq!((s, r), (session, request));
        prop_assert_eq!(&wire::encode_session_query(s, r, &q)[..], &sq[..]);

        let welcome = wire::encode_welcome(session);
        prop_assert_eq!(wire::decode_welcome(&welcome).expect("decodes"), session);
    }

    #[test]
    fn error_frame_roundtrip(request in any::<u64>(), raw in collection::vec(any::<u8>(), 0..64)) {
        let message: String = raw.iter().map(|&b| char::from(b'a' + b % 26)).collect();
        let frame = wire::encode_error_frame(request, &message);
        let (r, m) = wire::decode_error_frame(&frame).expect("own encoding decodes");
        prop_assert_eq!(r, request);
        prop_assert_eq!(m, message);
    }

    #[test]
    fn update_row_roundtrip_is_canonical(request in any::<u64>(), seed in any::<u64>()) {
        let fix = fixture();
        let params = &fix.params;
        let updates = random_updates(params, seed);
        let frame = wire::encode_update_rows(request, &updates).expect("within cap");
        let (r, back) = wire::decode_update_rows(params, &frame).expect("own encoding decodes");
        prop_assert_eq!(r, request);
        prop_assert_eq!(&back, &updates);
        let again = wire::encode_update_rows(r, &back).expect("within cap");
        prop_assert_eq!(&again[..], &frame[..], "encoding not canonical");
    }

    #[test]
    fn update_ack_roundtrip(request in any::<u64>(), epoch in any::<u64>(), applied in any::<u32>()) {
        let ack = wire::encode_update_ack(request, epoch, applied);
        prop_assert_eq!(wire::decode_update_ack(&ack).expect("decodes"), (request, epoch, applied));
    }

    #[test]
    fn ks_hello_roundtrip_is_canonical(_tick in any::<bool>()) {
        let fix = ks_fixture();
        let keys = wire::decode_ks_hello(fix.params.he(), &fix.hello_bytes)
            .expect("own encoding decodes");
        prop_assert_eq!(&wire::encode_ks_hello(&keys)[..], &fix.hello_bytes[..],
            "encoding not canonical");
    }

    #[test]
    fn ks_welcome_roundtrip(session in any::<u64>(), seed in any::<u64>()) {
        let fix = ks_fixture();
        let schema = KvSchema::new(fix.params.clone(), seed).expect("any seed lays out");
        let frame = wire::encode_ks_welcome(session, &schema);
        let (s, back) = wire::decode_ks_welcome(&fix.params, &frame).expect("decodes");
        prop_assert_eq!(s, session);
        prop_assert_eq!(back.seed(), seed);
        prop_assert_eq!(back.buckets(), schema.buckets());
        prop_assert_eq!(&wire::encode_ks_welcome(s, &back)[..], &frame[..]);
    }

    #[test]
    fn ks_query_frame_ids_roundtrip(session in any::<u64>(), request in any::<u64>()) {
        let fix = ks_fixture();
        let (_, _, query) =
            wire::decode_ks_query(&fix.params, &fix.query_bytes).expect("fixture decodes");
        let frame = wire::encode_ks_query(session, request, &query);
        let (s, r, q) = wire::decode_ks_query(&fix.params, &frame).expect("own encoding decodes");
        prop_assert_eq!((s, r), (session, request));
        prop_assert_eq!(&wire::encode_ks_query(s, r, &q)[..], &frame[..], "not canonical");
    }

    #[test]
    fn ks_and_compressed_response_roundtrip(request in any::<u64>(), seed in any::<u64>()) {
        let fix = ks_fixture();
        let he = fix.params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(he, &mut rng);
        let vals: Vec<u64> = (0..he.n()).map(|_| rng.gen_range(0..he.p())).collect();
        let ct = BfvCiphertext::encrypt(he, &sk, &Plaintext::new(he, vals).expect("below P"), &mut rng);
        let frame = wire::encode_ks_response(request, &ct);
        let (r, back) = wire::decode_ks_response(he, &frame).expect("own encoding decodes");
        prop_assert_eq!(r, request);
        prop_assert_eq!(&back, &ct);
        prop_assert_eq!(&wire::encode_ks_response(r, &back)[..], &frame[..]);

        let switched = ive_he::modswitch::switch_to_first_prime(he, &ct).expect("switches");
        let frame = wire::encode_compressed_response(request, &switched);
        prop_assert!(frame.len() < wire::encode_ks_response(request, &ct).len(),
            "compression must shrink the frame");
        let (r, back) = wire::decode_compressed_response(he, &frame).expect("decodes");
        prop_assert_eq!(r, request);
        prop_assert_eq!(back.primes, switched.primes);
        prop_assert_eq!(&back.a, &switched.a);
        prop_assert_eq!(&back.b, &switched.b);
        prop_assert_eq!(&wire::encode_compressed_response(r, &back)[..], &frame[..]);
    }

    #[test]
    fn stats_frames_roundtrip_is_canonical(
        request in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let report = random_stats_report(seed);
        let get = wire::encode_get_stats(request);
        prop_assert_eq!(wire::decode_get_stats(&get).expect("own encoding decodes"), request);
        prop_assert_eq!(&wire::encode_get_stats(request)[..], &get[..]);

        let frame = wire::encode_stats_response(request, &report).expect("within caps");
        let (r, back) = wire::decode_stats_response(&frame).expect("own encoding decodes");
        prop_assert_eq!(r, request);
        prop_assert_eq!(&back, &report);
        let again = wire::encode_stats_response(r, &back).expect("within caps");
        prop_assert_eq!(&again[..], &frame[..], "encoding not canonical");
    }

    #[test]
    fn kv_update_roundtrip_and_key_caps(
        request in any::<u64>(),
        raw in collection::vec(any::<u8>(), 1..64),
        is_put in any::<bool>(),
        put_value in any::<u64>(),
    ) {
        let value = is_put.then_some(put_value);
        let frame = wire::encode_kv_update(request, &raw, value).expect("valid key");
        let (r, key, v) = wire::decode_kv_update(&frame).expect("own encoding decodes");
        prop_assert_eq!(r, request);
        prop_assert_eq!(&key[..], &raw[..]);
        prop_assert_eq!(v, value);
        prop_assert_eq!(&wire::encode_kv_update(r, &key, v).expect("valid")[..], &frame[..]);
        // Key bounds are enforced at encode time too, not just decode.
        prop_assert!(wire::encode_kv_update(request, b"", value).is_err());
        prop_assert!(
            wire::encode_kv_update(request, &vec![0u8; wire::MAX_KV_KEY_BYTES + 1], value).is_err()
        );
    }
}

proptest! {
    // Fuzz cases are cheap (no crypto), so run more of them.
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncation_never_panics_and_always_errs(cut_permille in 0u32..1000) {
        let fix = fixture();
        let he = fix.params.he();
        for bytes in [&fix.query_bytes, &fix.keys_bytes] {
            let cut = (bytes.len() as u64 * u64::from(cut_permille) / 1000) as usize;
            let short = bytes.slice(..cut.min(bytes.len() - 1));
            prop_assert!(wire::decode_query(he, &short).is_err());
            prop_assert!(wire::decode_client_keys(he, &short).is_err());
            prop_assert!(wire::decode_session_response(he, &short).is_err());
        }
    }

    #[test]
    fn update_frame_truncation_and_corruption_never_panic(
        cut_permille in 0u32..1000,
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let fix = fixture();
        let params = &fix.params;
        let updates = vec![
            ive_pir::RecordUpdate::put(1, b"truncate me".to_vec()),
            ive_pir::RecordUpdate::delete(2),
            ive_pir::RecordUpdate::put(params.num_records() - 1, vec![0xAB; 16]),
        ];
        let frame = wire::encode_update_rows(42, &updates).expect("within cap");
        // Every strict prefix must fail cleanly.
        let cut = (frame.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let short = frame.slice(..cut.min(frame.len() - 1));
        prop_assert!(wire::decode_update_rows(params, &short).is_err());
        let ack = wire::encode_update_ack(42, 7, 3);
        let ack_cut = (ack.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        prop_assert!(wire::decode_update_ack(&ack.slice(..ack_cut.min(ack.len() - 1))).is_err());
        // A flipped body byte either errs or decodes to a frame that
        // re-encodes canonically — no panic, no third outcome.
        let mut bad = BytesMut::new();
        bad.extend_from_slice(&frame[..]);
        let idx = 6 + pos % (frame.len() - 6);
        bad[idx] ^= flip;
        let bad = bad.freeze();
        if let Ok((r, back)) = wire::decode_update_rows(params, &bad) {
            let again = wire::encode_update_rows(r, &back).expect("within cap");
            prop_assert_eq!(&again[..], &bad[..]);
        }
    }

    #[test]
    fn stats_frame_truncation_never_panics_and_always_errs(
        cut_permille in 0u32..1000,
        seed in any::<u64>(),
    ) {
        let report = random_stats_report(seed);
        let get = wire::encode_get_stats(9);
        let cut = (get.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        prop_assert!(wire::decode_get_stats(&get.slice(..cut.min(get.len() - 1))).is_err());

        let frame = wire::encode_stats_response(9, &report).expect("within caps");
        let cut = (frame.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        prop_assert!(
            wire::decode_stats_response(&frame.slice(..cut.min(frame.len() - 1))).is_err()
        );
    }

    #[test]
    fn keyword_frame_truncation_never_panics_and_always_errs(cut_permille in 0u32..1000) {
        let fix = ks_fixture();
        let he = fix.params.he();
        let frames = [
            &fix.hello_bytes,
            &fix.query_bytes,
            &fix.response_bytes,
            &fix.compressed_bytes,
            &fix.kv_update_bytes,
            &wire::encode_ks_welcome(1, &KvSchema::new(fix.params.clone(), 7).expect("lays out")),
        ];
        for bytes in frames {
            let cut = (bytes.len() as u64 * u64::from(cut_permille) / 1000) as usize;
            let short = bytes.slice(..cut.min(bytes.len() - 1));
            prop_assert!(wire::decode_ks_hello(he, &short).is_err());
            prop_assert!(wire::decode_ks_welcome(&fix.params, &short).is_err());
            prop_assert!(wire::decode_ks_query(&fix.params, &short).is_err());
            prop_assert!(wire::decode_ks_response(he, &short).is_err());
            prop_assert!(wire::decode_compressed_response(he, &short).is_err());
            prop_assert!(wire::decode_kv_update(&short).is_err());
        }
    }

    #[test]
    fn keyword_body_corruption_errs_or_stays_canonical(seed in any::<u64>()) {
        // Same canonical-form invariant as the index frames: a flipped
        // body byte either fails to decode or re-encodes to exactly the
        // tampered bytes — no panic, no third outcome.
        let fix = ks_fixture();
        let he = fix.params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for bytes in [&fix.query_bytes, &fix.compressed_bytes, &fix.kv_update_bytes] {
            let pos = rng.gen_range(6..bytes.len());
            let flip = rng.gen_range(1..=255) as u8;
            let mut bad = BytesMut::new();
            bad.extend_from_slice(&bytes[..]);
            bad[pos] ^= flip;
            let bad = bad.freeze();
            if let Ok((s, r, q)) = wire::decode_ks_query(&fix.params, &bad) {
                prop_assert_eq!(&wire::encode_ks_query(s, r, &q)[..], &bad[..]);
            }
            if let Ok((r, ct)) = wire::decode_compressed_response(he, &bad) {
                prop_assert_eq!(&wire::encode_compressed_response(r, &ct)[..], &bad[..]);
            }
            if let Ok((r, key, v)) = wire::decode_kv_update(&bad) {
                prop_assert_eq!(&wire::encode_kv_update(r, &key, v).expect("valid")[..], &bad[..]);
            }
        }
    }

    #[test]
    fn header_corruption_rejected(byte in 0usize..6, flip in 1u8..=255) {
        // Flipping any header byte (magic, version, or tag) must turn the
        // frame into a decode error, never a panic or a silent success.
        let fix = fixture();
        let he = fix.params.he();
        let mut bad = BytesMut::new();
        bad.extend_from_slice(&fix.query_bytes[..]);
        bad[byte] ^= flip;
        let bad = bad.freeze();
        prop_assert!(wire::decode_query(he, &bad).is_err());
    }

    #[test]
    fn body_corruption_errs_or_stays_canonical(seed in any::<u64>()) {
        // A flipped body byte either fails to decode or decodes to a frame
        // that re-encodes to exactly the tampered bytes (the canonical-form
        // invariant): no third outcome, no panic.
        let fix = fixture();
        let he = fix.params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pos = rng.gen_range(6..fix.query_bytes.len());
        let flip = rng.gen_range(1..=255) as u8;
        let mut bad = BytesMut::new();
        bad.extend_from_slice(&fix.query_bytes[..]);
        bad[pos] ^= flip;
        let bad = bad.freeze();
        if let Ok(query) = wire::decode_query(he, &bad) {
            prop_assert_eq!(&wire::encode_query(&query)[..], &bad[..]);
        }
    }
}

/// Every decoder fed every *other* frame type must name the mismatch.
#[test]
fn wrong_tag_errors_name_both_frames() {
    let fix = fixture();
    let he = fix.params.he();
    let err = wire::decode_client_keys(he, &fix.query_bytes).expect_err("tag mismatch");
    let msg = err.to_string();
    assert!(msg.contains("ClientKeys") && msg.contains("Query"), "unhelpful: {msg}");
    let err = wire::decode_query(he, &fix.keys_bytes).expect_err("tag mismatch");
    let msg = err.to_string();
    assert!(msg.contains("Query") && msg.contains("ClientKeys"), "unhelpful: {msg}");
    let err = wire::decode_welcome(&fix.query_bytes).expect_err("tag mismatch");
    assert!(err.to_string().contains("Welcome"), "unhelpful: {err}");
}

/// The stats-frame caps are enforced at encode time, mirroring decode.
#[test]
fn stats_report_caps_enforced_on_encode() {
    let report = wire::StatsReport {
        latency_buckets: vec![0; wire::MAX_STATS_BUCKETS + 1],
        ..Default::default()
    };
    assert!(wire::encode_stats_response(1, &report).is_err(), "bucket cap not enforced");
    let report = wire::StatsReport {
        stages: vec![wire::StageReport::default(); wire::MAX_STATS_STAGES + 1],
        ..Default::default()
    };
    assert!(wire::encode_stats_response(1, &report).is_err(), "stage cap not enforced");
}

/// `peek_tag` agrees with the decoder dispatch for every frame type.
#[test]
fn peek_tag_matches_frame_types() {
    let fix = fixture();
    let mut client =
        PirClient::new(&fix.params, rand::rngs::StdRng::seed_from_u64(7)).expect("keygen");
    let query = client.query(1).expect("in range");
    let cases = [
        (wire::encode_query(&query), wire::Tag::Query),
        (wire::encode_client_keys(client.public_keys()), wire::Tag::ClientKeys),
        (wire::encode_hello(client.public_keys()), wire::Tag::Hello),
        (wire::encode_welcome(5), wire::Tag::Welcome),
        (wire::encode_session_query(5, 6, &query), wire::Tag::SessionQuery),
        (wire::encode_error_frame(6, "nope"), wire::Tag::Error),
        (
            wire::encode_update_rows(7, &[ive_pir::RecordUpdate::delete(0)]).expect("within cap"),
            wire::Tag::UpdateRow,
        ),
        (wire::encode_update_ack(7, 1, 1), wire::Tag::UpdateAck),
        (ks_fixture().hello_bytes.clone(), wire::Tag::KsHello),
        (
            wire::encode_ks_welcome(
                1,
                &KvSchema::new(ks_fixture().params.clone(), 7).expect("lays out"),
            ),
            wire::Tag::KsWelcome,
        ),
        (ks_fixture().query_bytes.clone(), wire::Tag::KsQuery),
        (ks_fixture().response_bytes.clone(), wire::Tag::KsResponse),
        (ks_fixture().compressed_bytes.clone(), wire::Tag::CompressedResponse),
        (ks_fixture().kv_update_bytes.clone(), wire::Tag::KvUpdate),
        (wire::encode_get_stats(8), wire::Tag::GetStats),
        (
            wire::encode_stats_response(8, &wire::StatsReport::default()).expect("within caps"),
            wire::Tag::StatsResponse,
        ),
    ];
    for (bytes, want) in cases {
        assert_eq!(wire::peek_tag(&bytes).expect("well-formed"), want);
    }
}
