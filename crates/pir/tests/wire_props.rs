//! Property-based coverage for every wire frame: canonical round-trips
//! plus truncation / bad-magic / wrong-tag / wrong-version fuzzing.
//!
//! The round-trip properties pin the *canonical encoding* invariant the
//! serving runtime relies on: `encode(decode(bytes)) == bytes` for every
//! frame a decoder accepts, so a server can cache, re-frame, and forward
//! material without semantic drift.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

use ive_he::{BfvCiphertext, Plaintext, RgswCiphertext, SecretKey};
use ive_math::rns::{Form, RnsPoly};
use ive_pir::wire;
use ive_pir::{PirClient, PirParams};

/// Shared fixtures, built once: toy parameters, a client, and one encoded
/// instance of each frame type.
struct Fixture {
    params: PirParams,
    sk: SecretKey,
    query_bytes: Bytes,
    keys_bytes: Bytes,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let params = PirParams::toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x317E_57A7E);
        let sk = SecretKey::generate(params.he(), &mut rng);
        let mut client = PirClient::new(&params, rand::rngs::StdRng::seed_from_u64(99))
            .expect("toy keygen succeeds");
        let query = client.query(3).expect("in range");
        Fixture {
            query_bytes: wire::encode_query(&query),
            keys_bytes: wire::encode_client_keys(client.public_keys()),
            params,
            sk,
        }
    })
}

fn random_poly(rng: &mut rand::rngs::StdRng, form: Form) -> RnsPoly {
    let fix = fixture();
    RnsPoly::sample_uniform(fix.params.he().ring(), form, rng)
}

/// A seed-derived batch of valid row deltas (puts with random payloads
/// up to the record capacity, deletes, in-range indices).
fn random_updates(params: &PirParams, seed: u64) -> Vec<ive_pir::RecordUpdate> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let count = rng.gen_range(0..8usize);
    (0..count)
        .map(|_| {
            let index = rng.gen_range(0..params.num_records());
            if rng.gen_bool(0.7) {
                let len = rng.gen_range(0..=params.record_bytes().min(48));
                ive_pir::RecordUpdate::put(index, (0..len).map(|_| rng.gen()).collect())
            } else {
                ive_pir::RecordUpdate::delete(index)
            }
        })
        .collect()
}

fn random_bfv(rng: &mut rand::rngs::StdRng) -> BfvCiphertext {
    let fix = fixture();
    let he = fix.params.he();
    let vals: Vec<u64> = (0..he.n()).map(|_| rng.gen_range(0..he.p())).collect();
    let m = Plaintext::new(he, vals).expect("below P");
    BfvCiphertext::encrypt(he, &fix.sk, &m, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn poly_roundtrip_is_canonical(seed in any::<u64>(), ntt in any::<bool>()) {
        let fix = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let poly = random_poly(&mut rng, if ntt { Form::Ntt } else { Form::Coeff });
        let mut buf = BytesMut::new();
        wire::write_poly(&mut buf, &poly);
        let bytes = buf.freeze();
        let mut cursor = bytes.clone();
        let back = wire::read_poly(fix.params.he(), &mut cursor).expect("own encoding decodes");
        prop_assert_eq!(&back, &poly);
        let mut again = BytesMut::new();
        wire::write_poly(&mut again, &back);
        prop_assert_eq!(&again.freeze()[..], &bytes[..], "encoding not canonical");
    }

    #[test]
    fn bfv_and_response_roundtrip(seed in any::<u64>()) {
        let fix = fixture();
        let he = fix.params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = random_bfv(&mut rng);
        let bytes = wire::encode_response(&ct);
        let back = wire::decode_response(he, &bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &ct);
        prop_assert_eq!(&wire::encode_response(&back)[..], &bytes[..]);
    }

    #[test]
    fn rgsw_roundtrip(seed in any::<u64>(), bit in any::<bool>()) {
        let fix = fixture();
        let he = fix.params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = RgswCiphertext::encrypt_bit(he, &fix.sk, bit, &mut rng);
        let mut buf = BytesMut::new();
        wire::write_rgsw(&mut buf, &ct);
        let bytes = buf.freeze();
        let mut cursor = bytes.clone();
        let back = wire::read_rgsw(he, &mut cursor).expect("own encoding decodes");
        let mut again = BytesMut::new();
        wire::write_rgsw(&mut again, &back);
        prop_assert_eq!(&again.freeze()[..], &bytes[..], "encoding not canonical");
    }

    #[test]
    fn session_frame_ids_roundtrip(session in any::<u64>(), request in any::<u64>()) {
        let fix = fixture();
        let he = fix.params.he();
        let query = wire::decode_query(he, &fix.query_bytes).expect("fixture decodes");
        let sq = wire::encode_session_query(session, request, &query);
        let (s, r, q) = wire::decode_session_query(he, &sq).expect("own encoding decodes");
        prop_assert_eq!((s, r), (session, request));
        prop_assert_eq!(&wire::encode_session_query(s, r, &q)[..], &sq[..]);

        let welcome = wire::encode_welcome(session);
        prop_assert_eq!(wire::decode_welcome(&welcome).expect("decodes"), session);
    }

    #[test]
    fn error_frame_roundtrip(request in any::<u64>(), raw in collection::vec(any::<u8>(), 0..64)) {
        let message: String = raw.iter().map(|&b| char::from(b'a' + b % 26)).collect();
        let frame = wire::encode_error_frame(request, &message);
        let (r, m) = wire::decode_error_frame(&frame).expect("own encoding decodes");
        prop_assert_eq!(r, request);
        prop_assert_eq!(m, message);
    }

    #[test]
    fn update_row_roundtrip_is_canonical(request in any::<u64>(), seed in any::<u64>()) {
        let fix = fixture();
        let params = &fix.params;
        let updates = random_updates(params, seed);
        let frame = wire::encode_update_rows(request, &updates).expect("within cap");
        let (r, back) = wire::decode_update_rows(params, &frame).expect("own encoding decodes");
        prop_assert_eq!(r, request);
        prop_assert_eq!(&back, &updates);
        let again = wire::encode_update_rows(r, &back).expect("within cap");
        prop_assert_eq!(&again[..], &frame[..], "encoding not canonical");
    }

    #[test]
    fn update_ack_roundtrip(request in any::<u64>(), epoch in any::<u64>(), applied in any::<u32>()) {
        let ack = wire::encode_update_ack(request, epoch, applied);
        prop_assert_eq!(wire::decode_update_ack(&ack).expect("decodes"), (request, epoch, applied));
    }
}

proptest! {
    // Fuzz cases are cheap (no crypto), so run more of them.
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncation_never_panics_and_always_errs(cut_permille in 0u32..1000) {
        let fix = fixture();
        let he = fix.params.he();
        for bytes in [&fix.query_bytes, &fix.keys_bytes] {
            let cut = (bytes.len() as u64 * u64::from(cut_permille) / 1000) as usize;
            let short = bytes.slice(..cut.min(bytes.len() - 1));
            prop_assert!(wire::decode_query(he, &short).is_err());
            prop_assert!(wire::decode_client_keys(he, &short).is_err());
            prop_assert!(wire::decode_session_response(he, &short).is_err());
        }
    }

    #[test]
    fn update_frame_truncation_and_corruption_never_panic(
        cut_permille in 0u32..1000,
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let fix = fixture();
        let params = &fix.params;
        let updates = vec![
            ive_pir::RecordUpdate::put(1, b"truncate me".to_vec()),
            ive_pir::RecordUpdate::delete(2),
            ive_pir::RecordUpdate::put(params.num_records() - 1, vec![0xAB; 16]),
        ];
        let frame = wire::encode_update_rows(42, &updates).expect("within cap");
        // Every strict prefix must fail cleanly.
        let cut = (frame.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let short = frame.slice(..cut.min(frame.len() - 1));
        prop_assert!(wire::decode_update_rows(params, &short).is_err());
        let ack = wire::encode_update_ack(42, 7, 3);
        let ack_cut = (ack.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        prop_assert!(wire::decode_update_ack(&ack.slice(..ack_cut.min(ack.len() - 1))).is_err());
        // A flipped body byte either errs or decodes to a frame that
        // re-encodes canonically — no panic, no third outcome.
        let mut bad = BytesMut::new();
        bad.extend_from_slice(&frame[..]);
        let idx = 6 + pos % (frame.len() - 6);
        bad[idx] ^= flip;
        let bad = bad.freeze();
        if let Ok((r, back)) = wire::decode_update_rows(params, &bad) {
            let again = wire::encode_update_rows(r, &back).expect("within cap");
            prop_assert_eq!(&again[..], &bad[..]);
        }
    }

    #[test]
    fn header_corruption_rejected(byte in 0usize..6, flip in 1u8..=255) {
        // Flipping any header byte (magic, version, or tag) must turn the
        // frame into a decode error, never a panic or a silent success.
        let fix = fixture();
        let he = fix.params.he();
        let mut bad = BytesMut::new();
        bad.extend_from_slice(&fix.query_bytes[..]);
        bad[byte] ^= flip;
        let bad = bad.freeze();
        prop_assert!(wire::decode_query(he, &bad).is_err());
    }

    #[test]
    fn body_corruption_errs_or_stays_canonical(seed in any::<u64>()) {
        // A flipped body byte either fails to decode or decodes to a frame
        // that re-encodes to exactly the tampered bytes (the canonical-form
        // invariant): no third outcome, no panic.
        let fix = fixture();
        let he = fix.params.he();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pos = rng.gen_range(6..fix.query_bytes.len());
        let flip = rng.gen_range(1..=255) as u8;
        let mut bad = BytesMut::new();
        bad.extend_from_slice(&fix.query_bytes[..]);
        bad[pos] ^= flip;
        let bad = bad.freeze();
        if let Ok(query) = wire::decode_query(he, &bad) {
            prop_assert_eq!(&wire::encode_query(&query)[..], &bad[..]);
        }
    }
}

/// Every decoder fed every *other* frame type must name the mismatch.
#[test]
fn wrong_tag_errors_name_both_frames() {
    let fix = fixture();
    let he = fix.params.he();
    let err = wire::decode_client_keys(he, &fix.query_bytes).expect_err("tag mismatch");
    let msg = err.to_string();
    assert!(msg.contains("ClientKeys") && msg.contains("Query"), "unhelpful: {msg}");
    let err = wire::decode_query(he, &fix.keys_bytes).expect_err("tag mismatch");
    let msg = err.to_string();
    assert!(msg.contains("Query") && msg.contains("ClientKeys"), "unhelpful: {msg}");
    let err = wire::decode_welcome(&fix.query_bytes).expect_err("tag mismatch");
    assert!(err.to_string().contains("Welcome"), "unhelpful: {err}");
}

/// `peek_tag` agrees with the decoder dispatch for every frame type.
#[test]
fn peek_tag_matches_frame_types() {
    let fix = fixture();
    let mut client =
        PirClient::new(&fix.params, rand::rngs::StdRng::seed_from_u64(7)).expect("keygen");
    let query = client.query(1).expect("in range");
    let cases = [
        (wire::encode_query(&query), wire::Tag::Query),
        (wire::encode_client_keys(client.public_keys()), wire::Tag::ClientKeys),
        (wire::encode_hello(client.public_keys()), wire::Tag::Hello),
        (wire::encode_welcome(5), wire::Tag::Welcome),
        (wire::encode_session_query(5, 6, &query), wire::Tag::SessionQuery),
        (wire::encode_error_frame(6, "nope"), wire::Tag::Error),
        (
            wire::encode_update_rows(7, &[ive_pir::RecordUpdate::delete(0)]).expect("within cap"),
            wire::Tag::UpdateRow,
        ),
        (wire::encode_update_ack(7, 1, 1), wire::Tag::UpdateAck),
    ];
    for (bytes, want) in cases {
        assert_eq!(wire::peek_tag(&bytes).expect("well-formed"), want);
    }
}
