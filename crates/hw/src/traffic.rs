//! DRAM traffic accounting by data class — the units of Fig. 8.

use serde::{Deserialize, Serialize};

/// The data classes the paper's scheduling study distinguishes (Fig. 8
/// legend: "BFV Ciphertext load", "BFV Ciphertext store",
/// "Evk or RGSW load"), plus database streaming for `RowSel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// BFV ciphertext loads (intermediate tree values read back).
    CtLoad,
    /// BFV ciphertext stores (intermediate tree values spilled).
    CtStore,
    /// Evaluation-key (`evk_r`) or RGSW selection-bit loads.
    KeyLoad,
    /// Database plaintext streaming during `RowSel`.
    DbStream,
}

/// All classes, in display order.
pub const ALL_CLASSES: [TrafficClass; 4] =
    [TrafficClass::CtLoad, TrafficClass::CtStore, TrafficClass::KeyLoad, TrafficClass::DbStream];

/// Byte counters per traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traffic {
    /// BFV ciphertext load bytes.
    pub ct_load: u64,
    /// BFV ciphertext store bytes.
    pub ct_store: u64,
    /// evk/RGSW load bytes.
    pub key_load: u64,
    /// Database streaming bytes.
    pub db_stream: u64,
}

impl Traffic {
    /// The zero traffic vector.
    pub fn zero() -> Self {
        Traffic::default()
    }

    /// Adds `bytes` to one class.
    pub fn add(&mut self, class: TrafficClass, bytes: u64) {
        match class {
            TrafficClass::CtLoad => self.ct_load += bytes,
            TrafficClass::CtStore => self.ct_store += bytes,
            TrafficClass::KeyLoad => self.key_load += bytes,
            TrafficClass::DbStream => self.db_stream += bytes,
        }
    }

    /// Bytes in one class.
    pub fn get(&self, class: TrafficClass) -> u64 {
        match class {
            TrafficClass::CtLoad => self.ct_load,
            TrafficClass::CtStore => self.ct_store,
            TrafficClass::KeyLoad => self.key_load,
            TrafficClass::DbStream => self.db_stream,
        }
    }

    /// Total bytes over all classes.
    pub fn total(&self) -> u64 {
        self.ct_load + self.ct_store + self.key_load + self.db_stream
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &Traffic) -> Traffic {
        Traffic {
            ct_load: self.ct_load + other.ct_load,
            ct_store: self.ct_store + other.ct_store,
            key_load: self.key_load + other.key_load,
            db_stream: self.db_stream + other.db_stream,
        }
    }

    /// Scales every class by an integer factor (e.g. batch size).
    pub fn scaled(&self, factor: u64) -> Traffic {
        Traffic {
            ct_load: self.ct_load * factor,
            ct_store: self.ct_store * factor,
            key_load: self.key_load * factor,
            db_stream: self.db_stream * factor,
        }
    }

    /// Scales every class by a real factor (e.g. batch × fill fraction).
    pub fn scaled_f(&self, factor: f64) -> Traffic {
        Traffic {
            ct_load: (self.ct_load as f64 * factor).round() as u64,
            ct_store: (self.ct_store as f64 * factor).round() as u64,
            key_load: (self.key_load as f64 * factor).round() as u64,
            db_stream: (self.db_stream as f64 * factor).round() as u64,
        }
    }
}

impl core::ops::Add for Traffic {
    type Output = Traffic;
    fn add(self, rhs: Traffic) -> Traffic {
        self.merged(&rhs)
    }
}

impl core::iter::Sum for Traffic {
    fn sum<I: Iterator<Item = Traffic>>(iter: I) -> Traffic {
        iter.fold(Traffic::zero(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut t = Traffic::zero();
        t.add(TrafficClass::CtLoad, 100);
        t.add(TrafficClass::CtStore, 50);
        t.add(TrafficClass::KeyLoad, 25);
        t.add(TrafficClass::DbStream, 10);
        for c in ALL_CLASSES {
            assert!(t.get(c) > 0);
        }
        assert_eq!(t.total(), 185);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = Traffic::zero();
        a.add(TrafficClass::CtLoad, 7);
        let mut b = Traffic::zero();
        b.add(TrafficClass::KeyLoad, 3);
        let m = a.merged(&b);
        assert_eq!(m.total(), 10);
        assert_eq!(m.scaled(4).total(), 40);
        let s: Traffic = [a, b].into_iter().sum();
        assert_eq!(s, m);
    }
}
