//! Functional-unit occupancy arithmetic.
//!
//! Work is expressed in *unit-cycles* per functional-unit class. A step's
//! compute time is the maximum over classes that run in parallel and the
//! sum over classes that share a physical unit (IVE's sysNTTU runs NTT
//! *and* GEMM on the same array — the versatility trade-off of §IV-C).

use serde::{Deserialize, Serialize};

/// Functional-unit classes of the IVE core (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnitClass {
    /// sysNTTU in NTT mode (butterfly network).
    NttMode,
    /// sysNTTU in GEMM mode (output-stationary systolic array).
    GemmMode,
    /// iCRT unit (iCRT + bit extraction).
    Icrtu,
    /// Element-wise unit (MMAD + small GEMMs).
    Ewu,
    /// Automorphism unit.
    Autou,
}

/// Cycle counts per unit class for some piece of work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Work {
    /// sysNTTU NTT-mode cycles.
    pub ntt: f64,
    /// sysNTTU GEMM-mode cycles.
    pub gemm: f64,
    /// iCRTU cycles.
    pub icrt: f64,
    /// EWU cycles.
    pub ewu: f64,
    /// AutoU cycles.
    pub auto_u: f64,
}

impl Work {
    /// The zero work vector.
    pub fn zero() -> Self {
        Work::default()
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &Work) -> Work {
        Work {
            ntt: self.ntt + other.ntt,
            gemm: self.gemm + other.gemm,
            icrt: self.icrt + other.icrt,
            ewu: self.ewu + other.ewu,
            auto_u: self.auto_u + other.auto_u,
        }
    }

    /// Scales all components (e.g. by op count or batch size).
    pub fn scaled(&self, factor: f64) -> Work {
        Work {
            ntt: self.ntt * factor,
            gemm: self.gemm * factor,
            icrt: self.icrt * factor,
            ewu: self.ewu * factor,
            auto_u: self.auto_u * factor,
        }
    }

    /// Critical-path cycles when the sysNTTU serves both NTT and GEMM
    /// (they serialize on the shared array) while iCRTU/EWU/AutoU overlap.
    pub fn cycles_shared_sysnttu(&self) -> f64 {
        (self.ntt + self.gemm).max(self.icrt).max(self.ewu).max(self.auto_u)
    }

    /// Critical-path cycles with *separate* NTT and GEMM units of the same
    /// per-unit throughput (the `Base` configuration of Fig. 13e and the
    /// ARK-like system of Fig. 14a).
    pub fn cycles_split_units(&self) -> f64 {
        self.ntt.max(self.gemm).max(self.icrt).max(self.ewu).max(self.auto_u)
    }
}

impl core::ops::Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        self.merged(&rhs)
    }
}

impl core::iter::Sum for Work {
    fn sum<I: Iterator<Item = Work>>(iter: I) -> Work {
        iter.fold(Work::zero(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_unit_serializes_ntt_and_gemm() {
        let w = Work { ntt: 10.0, gemm: 20.0, icrt: 25.0, ewu: 1.0, auto_u: 0.0 };
        assert_eq!(w.cycles_shared_sysnttu(), 30.0);
        assert_eq!(w.cycles_split_units(), 25.0);
    }

    #[test]
    fn merge_and_scale() {
        let a = Work { ntt: 1.0, gemm: 2.0, icrt: 3.0, ewu: 4.0, auto_u: 5.0 };
        let b = a.scaled(2.0);
        assert_eq!(b.gemm, 4.0);
        let c = a + b;
        assert_eq!(c.auto_u, 15.0);
        let s: Work = [a, b].into_iter().sum();
        assert_eq!(s, c);
    }

    #[test]
    fn sequential_pir_steps_favor_shared_unit() {
        // The §IV-C argument: steps are sequential, so a GEMM-heavy step
        // (RowSel) and an NTT-heavy step (ColTor) never compete — the
        // shared unit costs nothing on the critical path of either.
        let rowsel = Work { gemm: 100.0, ..Work::zero() };
        let coltor = Work { ntt: 80.0, gemm: 10.0, ..Work::zero() };
        let shared = rowsel.cycles_shared_sysnttu() + coltor.cycles_shared_sysnttu();
        let split = rowsel.cycles_split_units() + coltor.cycles_split_units();
        // Only ColTor's small internal GEMM serializes: 10 extra cycles.
        assert!(shared - split <= 10.0 + 1e-9);
    }
}
