//! Hardware-modeling substrate for the IVE reproduction.
//!
//! The paper evaluates IVE with a cycle-level simulator over explicit
//! models of DRAM, on-chip SRAM, and pipelined functional units. This crate
//! provides those building blocks, independent of any specific
//! accelerator:
//!
//! * [`mem`] — DRAM/interconnect specifications (HBM stacks, LPDDR
//!   modules, DDR5 channels, PCIe links) with bandwidth/capacity math.
//! * [`traffic`] — byte-accurate traffic accounting per data class
//!   (ciphertext loads/stores, evaluation-key loads, database streaming) —
//!   the units of Fig. 8.
//! * [`buffer`] — an explicitly managed scratchpad model (capacity,
//!   residency, write-back) matching the paper's decoupled data
//!   orchestration (§VI-A): misses and evictions emit traffic.
//! * [`treewalk`] — traversal-order simulation of the binary-tree
//!   computations (`ExpandQuery` mirror-image and `ColTor`) under
//!   BFS / DFS / hierarchical-search schedules, producing the DRAM
//!   traffic the scheduling study of §IV-A reasons about.
//! * [`mod@unit`] — pipelined functional-unit occupancy arithmetic.

pub mod buffer;
pub mod mem;
pub mod traffic;
pub mod treewalk;
pub mod unit;

pub use buffer::ManagedBuffer;
pub use mem::MemSpec;
pub use traffic::{Traffic, TrafficClass};
pub use treewalk::{TreeSchedule, TreeTraffic, TreeWalkConfig};
pub use unit::{UnitClass, Work};
