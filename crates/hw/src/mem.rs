//! Memory and interconnect specifications.

use serde::{Deserialize, Serialize};

/// Bytes per gigabyte (the paper uses binary units: 1TB = 2^40 B).
pub const GIB: u64 = 1 << 30;

/// A bandwidth/capacity specification for a DRAM device or link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Peak bandwidth in bytes per second.
    pub bytes_per_s: f64,
    /// Capacity in bytes (`u64::MAX` for links).
    pub capacity_bytes: u64,
}

impl MemSpec {
    /// One 24GB HBM stack at 512GB/s (§VI-A, \[82\]).
    pub fn hbm_stack() -> Self {
        MemSpec { name: "HBM stack", bytes_per_s: 512e9, capacity_bytes: 24 * GIB }
    }

    /// The chip-wide HBM system: four stacks (2TB/s, 96GB).
    pub fn hbm_chip() -> Self {
        MemSpec { name: "HBM x4", bytes_per_s: 4.0 * 512e9, capacity_bytes: 96 * GIB }
    }

    /// One 3D-stacked LPDDR module: 128GB at 128GB/s (§V, \[83\]).
    pub fn lpddr_module() -> Self {
        MemSpec { name: "LPDDR module", bytes_per_s: 128e9, capacity_bytes: 128 * GIB }
    }

    /// The scale-up LPDDR expander: four modules (512GB/s, 512GB).
    pub fn lpddr_system() -> Self {
        MemSpec { name: "LPDDR x4", bytes_per_s: 4.0 * 128e9, capacity_bytes: 512 * GIB }
    }

    /// Eight-channel DDR5-4800 (the Xeon Max baseline host memory).
    pub fn ddr5_host() -> Self {
        MemSpec { name: "DDR5-4800 x8", bytes_per_s: 307e9, capacity_bytes: 1024 * GIB }
    }

    /// RTX 4090 GDDR6X as used in the paper's roofline (939GB/s, Fig. 6).
    pub fn gddr6x_4090() -> Self {
        MemSpec { name: "GDDR6X (4090)", bytes_per_s: 939e9, capacity_bytes: 24 * GIB }
    }

    /// H100 SXM HBM3.
    pub fn hbm3_h100() -> Self {
        MemSpec { name: "HBM3 (H100)", bytes_per_s: 3350e9, capacity_bytes: 80 * GIB }
    }

    /// The cluster PCIe switch: up to 128GB/s (§V scale-out).
    pub fn pcie_switch() -> Self {
        MemSpec { name: "PCIe switch", bytes_per_s: 128e9, capacity_bytes: u64::MAX }
    }

    /// Host-to-accelerator PCIe Gen5 x16 link.
    pub fn pcie_gen5() -> Self {
        MemSpec { name: "PCIe Gen5 x16", bytes_per_s: 64e9, capacity_bytes: u64::MAX }
    }

    /// Time to move `bytes` at peak bandwidth, in seconds.
    #[inline]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bytes_per_s
    }

    /// Whether `bytes` fit in this device.
    #[inline]
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_memory_system() {
        let hbm = MemSpec::hbm_chip();
        assert_eq!(hbm.capacity_bytes, 96 * GIB);
        assert_eq!(hbm.bytes_per_s, 2048e9);
        let lp = MemSpec::lpddr_system();
        assert_eq!(lp.capacity_bytes, 512 * GIB);
        assert_eq!(lp.bytes_per_s, 512e9);
        // An IVE system supports up to 128GB of (raw) DB: preprocessed
        // 3.5x = 448GB fits the LPDDR expander.
        assert!(lp.fits(448 * GIB));
        assert!(!lp.fits(513 * GIB));
    }

    #[test]
    fn transfer_time_scales() {
        let hbm = MemSpec::hbm_chip();
        let t = hbm.transfer_time(2_048_000_000_000);
        assert!((t - 1.0).abs() < 1e-9);
        assert_eq!(hbm.transfer_time(0), 0.0);
    }
}
