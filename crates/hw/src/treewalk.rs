//! Traversal-order traffic simulation for the PIR binary trees (§IV-A).
//!
//! `ExpandQuery` (one root expanding into `2^depth` leaves) and `ColTor`
//! (`2^depth` leaves reducing to one root) are binary-tree computations
//! whose DRAM traffic depends entirely on the operation *schedule*:
//!
//! * **BFS** reuses the per-level client key maximally but spills every
//!   intermediate level (Fig. 7a);
//! * **DFS** keeps intermediates on-chip but cycles through all per-level
//!   keys, thrashing them when they outsize the scratchpad (Fig. 7b);
//! * **HS** (hierarchical search, Fig. 7c) processes subtrees whose
//!   working set fits on-chip, bounding both effects.
//!
//! The walker executes the exact operation sequence of each schedule
//! against a [`ManagedBuffer`], so the per-class traffic of Fig. 8 is
//! *derived*, not curve-fitted. Keys that fit permanently are pinned in
//! frequency order (lowest levels first), modeling the paper's
//! compiler-precomputed "decoupled data orchestration" (§VI-A).

use crate::buffer::ManagedBuffer;
use crate::traffic::{Traffic, TrafficClass};

/// Operation schedule for a tree walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeSchedule {
    /// Level-by-level.
    Bfs,
    /// Depth-first (post-order for reductions, pre-order for expansions).
    Dfs,
    /// Hierarchical search: subtrees of `subtree_depth` levels, each
    /// processed with BFS (`inner_bfs = true`) or DFS inside.
    Hs {
        /// Levels folded per subtree pass.
        subtree_depth: u32,
        /// Inner traversal: BFS (`true`) or DFS (`false`) — §IV-A
        /// compares both.
        inner_bfs: bool,
    },
}

/// Geometry and capacity inputs of a walk.
#[derive(Debug, Clone, Copy)]
pub struct TreeWalkConfig {
    /// Tree depth `d` (the walk touches `2^d` leaves).
    pub depth: u32,
    /// Bytes of one BFV ciphertext.
    pub ct_bytes: u64,
    /// Bytes of the per-level client key (`evk_r` or `ct_RGSW`).
    pub key_bytes: u64,
    /// Scratch bytes live during one operation (the `Dcp` expansion —
    /// `ℓ·ct` without reduction overlapping, ~`1·ct` with it, §IV-A).
    pub temp_bytes: u64,
    /// On-chip bytes available to this walk (per-core share).
    pub buffer_bytes: u64,
}

/// The result of a walk.
#[derive(Debug, Clone, Copy)]
pub struct TreeTraffic {
    /// DRAM traffic by class.
    pub traffic: Traffic,
    /// Number of tree operations executed (`2^d − 1` for a full tree).
    pub ops: u64,
}

impl TreeWalkConfig {
    fn effective_capacity(&self) -> u64 {
        self.buffer_bytes.saturating_sub(self.temp_bytes).max(self.ct_bytes)
    }

    /// The largest HS subtree depth whose working set fits on-chip,
    /// per the §IV-A formulas.
    ///
    /// * inner BFS: `ds·key + 2^{ds−1}·ct + temp ≤ capacity`
    /// * inner DFS: `ds·key + (ds+1)·ct + temp ≤ capacity`
    pub fn hs_auto_depth(&self, inner_bfs: bool) -> u32 {
        let cap = self.buffer_bytes;
        let mut best = 1;
        for ds in 1..=self.depth.max(1) {
            let ct_ws = if inner_bfs {
                (1u64 << (ds - 1)) * self.ct_bytes
            } else {
                (ds as u64 + 1) * self.ct_bytes
            };
            let ws = ds as u64 * self.key_bytes + ct_ws + self.temp_bytes;
            if ws <= cap {
                best = ds;
            } else {
                break;
            }
        }
        best
    }
}

// Node ids: level (from leaves) in the high bits, index in the low bits.
fn node_id(level: u32, index: u64) -> u64 {
    ((level as u64) << 48) | index
}
// Keys live in a separate id namespace.
fn key_id(level: u32) -> u64 {
    (1u64 << 60) | level as u64
}

/// Walker state shared by both tree directions.
struct Walker<'a> {
    cfg: &'a TreeWalkConfig,
    buf: ManagedBuffer,
    ops: u64,
}

impl<'a> Walker<'a> {
    fn new(cfg: &'a TreeWalkConfig) -> Self {
        let mut buf = ManagedBuffer::new(cfg.effective_capacity());
        // When the whole key set fits alongside a minimal ciphertext
        // workspace, pin it (the compiler-precomputed schedule would).
        // Pinning a *subset* would starve the remaining levels of
        // workspace, so otherwise leave key residency to recency: a hot
        // key (BFS reusing one level's key across the level) stays
        // resident, interleaved keys (DFS) thrash — exactly the §IV-A
        // trade-off.
        let ct_workspace = 4 * cfg.ct_bytes;
        let all_keys = cfg.depth as u64 * cfg.key_bytes;
        if all_keys + ct_workspace <= cfg.effective_capacity() {
            for level in 0..cfg.depth {
                buf.read(key_id(level), cfg.key_bytes, TrafficClass::KeyLoad);
                buf.pin(key_id(level));
            }
        }
        Walker { cfg, buf, ops: 0 }
    }

    fn use_key(&mut self, level: u32) {
        self.buf.read(key_id(level), self.cfg.key_bytes, TrafficClass::KeyLoad);
    }

    fn finish(self) -> TreeTraffic {
        TreeTraffic { traffic: self.buf.traffic(), ops: self.ops }
    }

    // --- reduction (ColTor): children at `level`, parent at `level+1` ---

    /// One CMux node: consume two children, produce the parent.
    fn reduce_op(&mut self, level: u32, parent_index: u64) {
        let c0 = node_id(level, 2 * parent_index);
        let c1 = node_id(level, 2 * parent_index + 1);
        self.buf.read(c0, self.cfg.ct_bytes, TrafficClass::CtLoad);
        self.buf.read(c1, self.cfg.ct_bytes, TrafficClass::CtLoad);
        self.use_key(level);
        self.buf.discard(c0);
        self.buf.discard(c1);
        self.buf.produce(node_id(level + 1, parent_index), self.cfg.ct_bytes);
        self.ops += 1;
    }

    fn reduce_bfs(&mut self, from_level: u32, levels: u32, base_index: u64) {
        for t in 0..levels {
            let level = from_level + t;
            let nodes = 1u64 << (levels - t - 1);
            for j in 0..nodes {
                self.reduce_op(level, base_index * nodes + j);
            }
        }
    }

    fn reduce_dfs(&mut self, from_level: u32, levels: u32, parent_index: u64) {
        if levels == 0 {
            return;
        }
        self.reduce_dfs(from_level, levels - 1, 2 * parent_index);
        self.reduce_dfs(from_level, levels - 1, 2 * parent_index + 1);
        self.reduce_op(from_level + levels - 1, parent_index);
    }

    // --- expansion (ExpandQuery): parent at `level+1`, children at `level`,
    //     with levels counted from the leaves so the mirror symmetry with
    //     the reduction is exact ---

    /// One Subs node: consume the parent, produce two children.
    fn expand_op(&mut self, level: u32, parent_index: u64) {
        let p = node_id(level + 1, parent_index);
        self.buf.read(p, self.cfg.ct_bytes, TrafficClass::CtLoad);
        self.use_key(level);
        self.buf.discard(p);
        self.buf.produce(node_id(level, 2 * parent_index), self.cfg.ct_bytes);
        self.buf.produce(node_id(level, 2 * parent_index + 1), self.cfg.ct_bytes);
        self.ops += 1;
    }

    fn expand_leaf_writeback(&mut self, index: u64) {
        let id = node_id(0, index);
        self.buf.writeback(id);
        self.buf.discard(id);
    }

    fn expand_bfs(&mut self, from_level: u32, levels: u32, base_index: u64) {
        for t in (0..levels).rev() {
            let level = from_level + t;
            let nodes = 1u64 << (levels - t - 1);
            for j in 0..nodes {
                self.expand_op(level, base_index * nodes + j);
            }
        }
    }

    fn expand_dfs(&mut self, from_level: u32, levels: u32, parent_index: u64) {
        if levels == 0 {
            return;
        }
        self.expand_op(from_level + levels - 1, parent_index);
        self.expand_dfs(from_level, levels - 1, 2 * parent_index);
        self.expand_dfs(from_level, levels - 1, 2 * parent_index + 1);
    }
}

/// Simulates one query's `ColTor` tournament (leaves start in DRAM, the
/// root is written back).
pub fn coltor_traffic(cfg: &TreeWalkConfig, schedule: TreeSchedule) -> TreeTraffic {
    let mut w = Walker::new(cfg);
    match schedule {
        TreeSchedule::Bfs => w.reduce_bfs(0, cfg.depth, 0),
        TreeSchedule::Dfs => w.reduce_dfs(0, cfg.depth, 0),
        TreeSchedule::Hs { subtree_depth, inner_bfs } => {
            let ds = subtree_depth.clamp(1, cfg.depth.max(1));
            let mut level = 0u32;
            while level < cfg.depth {
                let fold = ds.min(cfg.depth - level);
                let groups = 1u64 << (cfg.depth - level - fold);
                for g in 0..groups {
                    if inner_bfs {
                        w.reduce_bfs(level, fold, g);
                    } else {
                        w.reduce_dfs(level, fold, g);
                    }
                }
                level += fold;
            }
        }
    }
    let root = node_id(cfg.depth, 0);
    w.buf.writeback(root);
    w.buf.discard(root);
    w.finish()
}

/// Simulates one query's `ExpandQuery` (the root arrives from DRAM, all
/// `2^depth` leaves are written back for the step transition into
/// `RowSel` — the paper's no-pipelining design, §IV-C).
pub fn expand_traffic(cfg: &TreeWalkConfig, schedule: TreeSchedule) -> TreeTraffic {
    let mut w = Walker::new(cfg);
    match schedule {
        TreeSchedule::Bfs => {
            w.expand_bfs(0, cfg.depth, 0);
            for i in 0..1u64 << cfg.depth {
                w.expand_leaf_writeback(i);
            }
        }
        TreeSchedule::Dfs => {
            expand_dfs_with_writeback(&mut w, cfg.depth, 0);
        }
        TreeSchedule::Hs { subtree_depth, inner_bfs } => {
            // Mirror image of the reduction HS: subtrees from the top.
            let ds = subtree_depth.clamp(1, cfg.depth.max(1));
            let mut upper = cfg.depth;
            while upper > 0 {
                let fold = ds.min(upper);
                let level = upper - fold;
                let groups = 1u64 << (cfg.depth - upper);
                for g in 0..groups {
                    if inner_bfs {
                        w.expand_bfs(level, fold, g);
                    } else {
                        w.expand_dfs(level, fold, g);
                    }
                    // Subtree outputs spill unless this is the last stage;
                    // leaves always spill (step transition).
                    if level == 0 {
                        let leaves = 1u64 << fold;
                        for i in 0..leaves {
                            w.expand_leaf_writeback(g * leaves + i);
                        }
                    }
                }
                upper = level;
            }
        }
    }
    w.finish()
}

fn expand_dfs_with_writeback(w: &mut Walker<'_>, levels: u32, parent_index: u64) {
    if levels == 0 {
        w.expand_leaf_writeback(parent_index);
        return;
    }
    w.expand_op(levels - 1, parent_index);
    expand_dfs_with_writeback(w, levels - 1, 2 * parent_index);
    expand_dfs_with_writeback(w, levels - 1, 2 * parent_index + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §II-C/§II-D shapes (ℓ = 5): ct 112KB, RGSW 1120KB.
    fn coltor_cfg(depth: u32, buffer_mb: u64) -> TreeWalkConfig {
        TreeWalkConfig {
            depth,
            ct_bytes: 112 * 1024,
            key_bytes: 1120 * 1024,
            temp_bytes: 5 * 112 * 1024,
            buffer_bytes: buffer_mb << 20,
        }
    }

    #[test]
    fn op_counts_are_schedule_independent() {
        let cfg = coltor_cfg(8, 4);
        let expected = (1u64 << 8) - 1;
        for s in [
            TreeSchedule::Bfs,
            TreeSchedule::Dfs,
            TreeSchedule::Hs { subtree_depth: 2, inner_bfs: false },
            TreeSchedule::Hs { subtree_depth: 3, inner_bfs: true },
        ] {
            assert_eq!(coltor_traffic(&cfg, s).ops, expected, "{s:?}");
            assert_eq!(expand_traffic(&cfg, s).ops, expected, "{s:?}");
        }
    }

    #[test]
    fn every_leaf_is_loaded_at_least_once() {
        let cfg = coltor_cfg(9, 4);
        let floor = (1u64 << 9) * cfg.ct_bytes;
        for s in [TreeSchedule::Bfs, TreeSchedule::Dfs] {
            let t = coltor_traffic(&cfg, s).traffic;
            assert!(t.ct_load >= floor, "{s:?}: {} < {floor}", t.ct_load);
        }
    }

    #[test]
    fn hs_reduces_coltor_traffic_over_bfs() {
        // The §IV-A claim: HS cuts ct traffic roughly
        // (3·2^ds − 3)/(2^ds + 1)× against BFS.
        let cfg = coltor_cfg(11, 4);
        let bfs = coltor_traffic(&cfg, TreeSchedule::Bfs).traffic;
        let ds = cfg.hs_auto_depth(false);
        let hs =
            coltor_traffic(&cfg, TreeSchedule::Hs { subtree_depth: ds, inner_bfs: false }).traffic;
        assert!(
            hs.total() * 14 < bfs.total() * 10,
            "HS {} vs BFS {} (expected >1.4x reduction)",
            hs.total(),
            bfs.total()
        );
        // BFS spills intermediates; HS must spill far less.
        assert!(hs.ct_store * 4 < bfs.ct_store.max(1) * 3);
    }

    #[test]
    fn dfs_thrashes_keys_bfs_does_not() {
        let cfg = coltor_cfg(11, 4);
        let bfs = coltor_traffic(&cfg, TreeSchedule::Bfs).traffic;
        let dfs = coltor_traffic(&cfg, TreeSchedule::Dfs).traffic;
        // BFS loads each level key about once; DFS cycles them (§IV-A:
        // "a separate ct_RGSW is required for each depth, its reuse
        // becomes severely limited").
        assert!(dfs.key_load > 2 * bfs.key_load, "dfs {} bfs {}", dfs.key_load, bfs.key_load);
        // DFS keeps intermediates on-chip.
        assert!(dfs.ct_store < bfs.ct_store / 2);
    }

    #[test]
    fn bigger_buffer_never_hurts() {
        let small = coltor_cfg(10, 2);
        let large = coltor_cfg(10, 16);
        for s in [TreeSchedule::Bfs, TreeSchedule::Dfs] {
            let ts = coltor_traffic(&small, s).traffic.total();
            let tl = coltor_traffic(&large, s).traffic.total();
            assert!(tl <= ts, "{s:?}: {tl} > {ts}");
        }
    }

    #[test]
    fn hs_auto_depth_matches_working_set_formulas() {
        let cfg = coltor_cfg(11, 4);
        let dfs_depth = cfg.hs_auto_depth(false);
        // ds·key + (ds+1)·ct + temp <= 4MB with key 1.09MB, ct 112KB, temp
        // 560KB: ds=2 gives 3.07MB (fits), ds=3 gives 4.27MB (does not).
        assert_eq!(dfs_depth, 2);
        // With reduction overlapping the temp shrinks and the subtree
        // deepens — the §IV-A mechanism behind the extra 1.23x.
        let ro = TreeWalkConfig { temp_bytes: 112 * 1024, ..cfg };
        assert_eq!(ro.hs_auto_depth(false), 3);
        // DFS-inner admits deeper subtrees than BFS-inner at equal capacity
        // for big trees (working set linear vs exponential in depth).
        let wide = TreeWalkConfig { key_bytes: 128 * 1024, ..cfg };
        assert!(wide.hs_auto_depth(false) >= wide.hs_auto_depth(true));
    }

    #[test]
    fn expansion_writes_all_leaves() {
        let cfg = coltor_cfg(6, 4);
        for s in [
            TreeSchedule::Bfs,
            TreeSchedule::Dfs,
            TreeSchedule::Hs { subtree_depth: 2, inner_bfs: false },
        ] {
            let t = expand_traffic(&cfg, s).traffic;
            assert!(
                t.ct_store >= (1 << 6) * cfg.ct_bytes,
                "{s:?} stored only {} bytes",
                t.ct_store
            );
        }
    }

    #[test]
    fn degenerate_depth_zero() {
        let cfg = coltor_cfg(0, 4);
        let t = coltor_traffic(&cfg, TreeSchedule::Bfs);
        assert_eq!(t.ops, 0);
    }
}
