//! An explicitly managed on-chip scratchpad model.
//!
//! IVE's SRAM is software-managed (register file + buffers, §IV-F) with a
//! compiler-precomputed schedule (§VI-A "decoupled data orchestration").
//! This model tracks which items are resident, charges DRAM traffic on
//! misses, and writes dirty items back on eviction. Eviction is LRU among
//! unpinned items, which is what a precomputed schedule achieves for the
//! tree traversals studied here (the walker pins its live working set).

use std::collections::HashMap;

use crate::traffic::{Traffic, TrafficClass};

/// Identifier for a cached item (caller-assigned).
pub type ItemId = u64;

#[derive(Debug, Clone)]
struct Entry {
    bytes: u64,
    dirty: bool,
    pinned: bool,
    last_touch: u64,
}

/// A capacity-limited scratchpad that meters DRAM traffic.
#[derive(Debug)]
pub struct ManagedBuffer {
    capacity: u64,
    used: u64,
    clock: u64,
    entries: HashMap<ItemId, Entry>,
    traffic: Traffic,
}

impl ManagedBuffer {
    /// Creates a scratchpad of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        ManagedBuffer {
            capacity,
            used: 0,
            clock: 0,
            entries: HashMap::new(),
            traffic: Traffic::zero(),
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The DRAM traffic charged so far.
    #[inline]
    pub fn traffic(&self) -> Traffic {
        self.traffic
    }

    /// Whether an item is resident.
    pub fn contains(&self, id: ItemId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Reads an item: charges a load of `bytes` in `class` unless already
    /// resident. Returns `true` on a hit.
    pub fn read(&mut self, id: ItemId, bytes: u64, class: TrafficClass) -> bool {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.last_touch = self.clock;
            return true;
        }
        self.traffic.add(class, bytes);
        self.insert(id, bytes, false);
        false
    }

    /// Produces an item on-chip (no load): it becomes resident and dirty
    /// (must be written back if evicted before being dropped).
    pub fn produce(&mut self, id: ItemId, bytes: u64) {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.last_touch = self.clock;
            e.dirty = true;
            return;
        }
        self.insert(id, bytes, true);
    }

    /// Pins an item (exempt from eviction). No-op when absent.
    pub fn pin(&mut self, id: ItemId) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.pinned = true;
        }
    }

    /// Unpins an item.
    pub fn unpin(&mut self, id: ItemId) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.pinned = false;
        }
    }

    /// Drops an item without write-back (its value is dead).
    pub fn discard(&mut self, id: ItemId) {
        if let Some(e) = self.entries.remove(&id) {
            self.used -= e.bytes;
        }
    }

    /// Writes an item back to DRAM explicitly (e.g. a final result) and
    /// marks it clean; charges a `CtStore`.
    pub fn writeback(&mut self, id: ItemId) {
        if let Some(e) = self.entries.get_mut(&id) {
            self.traffic.add(TrafficClass::CtStore, e.bytes);
            e.dirty = false;
        }
    }

    fn insert(&mut self, id: ItemId, bytes: u64, dirty: bool) {
        while self.used + bytes > self.capacity {
            if !self.evict_one() {
                break; // everything pinned: allow transient over-subscription
            }
        }
        self.used += bytes;
        self.entries.insert(id, Entry { bytes, dirty, pinned: false, last_touch: self.clock });
    }

    fn evict_one(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| !e.pinned)
            .min_by_key(|(_, e)| e.last_touch)
            .map(|(&id, _)| id);
        match victim {
            Some(id) => {
                let e = self.entries.remove(&id).expect("victim exists");
                self.used -= e.bytes;
                if e.dirty {
                    self.traffic.add(TrafficClass::CtStore, e.bytes);
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_load() {
        let mut b = ManagedBuffer::new(1000);
        assert!(!b.read(1, 400, TrafficClass::CtLoad));
        assert!(b.read(1, 400, TrafficClass::CtLoad));
        assert_eq!(b.traffic().ct_load, 400);
        assert_eq!(b.used(), 400);
    }

    #[test]
    fn eviction_writes_back_dirty() {
        let mut b = ManagedBuffer::new(1000);
        b.produce(1, 600);
        b.read(2, 600, TrafficClass::CtLoad); // evicts item 1 (dirty)
        assert_eq!(b.traffic().ct_store, 600);
        assert!(!b.contains(1));
        assert!(b.contains(2));
    }

    #[test]
    fn clean_items_evict_silently() {
        let mut b = ManagedBuffer::new(1000);
        b.read(1, 600, TrafficClass::KeyLoad);
        b.read(2, 600, TrafficClass::KeyLoad);
        assert_eq!(b.traffic().ct_store, 0);
        assert_eq!(b.traffic().key_load, 1200);
    }

    #[test]
    fn pinned_items_survive() {
        let mut b = ManagedBuffer::new(1000);
        b.read(1, 600, TrafficClass::KeyLoad);
        b.pin(1);
        b.read(2, 600, TrafficClass::CtLoad);
        assert!(b.contains(1), "pinned item evicted");
        b.unpin(1);
        b.read(3, 600, TrafficClass::CtLoad);
        assert!(!b.contains(1));
    }

    #[test]
    fn lru_order() {
        let mut b = ManagedBuffer::new(900);
        b.read(1, 300, TrafficClass::CtLoad);
        b.read(2, 300, TrafficClass::CtLoad);
        b.read(3, 300, TrafficClass::CtLoad);
        b.read(1, 300, TrafficClass::CtLoad); // refresh 1
        b.read(4, 300, TrafficClass::CtLoad); // evicts 2 (oldest)
        assert!(b.contains(1));
        assert!(!b.contains(2));
        assert!(b.contains(3));
    }

    #[test]
    fn discard_frees_without_store() {
        let mut b = ManagedBuffer::new(500);
        b.produce(1, 400);
        b.discard(1);
        assert_eq!(b.used(), 0);
        assert_eq!(b.traffic().total(), 0);
    }

    #[test]
    fn explicit_writeback() {
        let mut b = ManagedBuffer::new(500);
        b.produce(1, 100);
        b.writeback(1);
        assert_eq!(b.traffic().ct_store, 100);
        // Now clean: eviction does not double-charge.
        b.read(2, 500, TrafficClass::CtLoad);
        assert_eq!(b.traffic().ct_store, 100);
    }
}
