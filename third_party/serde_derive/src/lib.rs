//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! subset (see `third_party/README.md`).
//!
//! The vendored `serde::Serialize`/`Deserialize` traits are empty
//! markers and nothing in the workspace uses them as bounds, so the
//! derives can expand to nothing at all. Emitting no impl (rather than
//! an empty one) sidesteps generic-parameter handling entirely.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
