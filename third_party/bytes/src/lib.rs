//! Offline subset of the `bytes` crate (see `third_party/README.md`).
//!
//! Implements the pieces the wire format in `ive_pir::wire` relies on:
//! [`Bytes`] (cheaply cloneable, cursor-advancing view), [`BytesMut`]
//! (growable builder), and the [`Buf`]/[`BufMut`] traits with the
//! big-endian `get_*`/`put_*` accessors, matching upstream semantics.

use std::ops::{Deref, DerefMut, RangeTo};
use std::sync::Arc;

/// Read-side cursor trait, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write-side trait, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Cheaply cloneable immutable byte view, mirroring `bytes::Bytes`.
///
/// Reading through [`Buf`] advances this view in place, exactly like
/// the real crate; clones share the backing allocation.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self { data: Arc::from(slice), start: 0, end: slice.len() }
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the view's bytes as a plain slice.
    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Sub-view over `range` (relative to this view), sharing storage.
    pub fn slice(&self, range: RangeTo<usize>) -> Self {
        assert!(range.end <= self.len(), "slice out of bounds");
        Self { data: Arc::clone(&self.data), start: self.start, end: self.start + range.end }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: Arc::from(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

/// Growable byte builder, mirroring `bytes::BytesMut`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self { data: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x0102);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0123_4567_89AB_CDEF);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_and_clone_share_storage() {
        let mut buf = BytesMut::new();
        buf.put_u32(7);
        buf.put_u32(9);
        let b = buf.freeze();
        let mut half = b.slice(..4);
        assert_eq!(half.remaining(), 4);
        assert_eq!(half.get_u32(), 7);
        // Original cursor is unaffected by reads on the slice.
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn bytes_mut_is_indexable() {
        let mut buf = BytesMut::from(&[1u8, 2, 3][..]);
        buf[0] ^= 0xFF;
        assert_eq!(&buf[..], &[0xFE, 2, 3]);
    }

    #[test]
    fn slice_buf_advances() {
        let data = [0u8, 0, 0, 5, 9];
        let mut view: &[u8] = &data;
        assert_eq!(view.get_u32(), 5);
        assert_eq!(view.get_u8(), 9);
        assert_eq!(view.remaining(), 0);
    }
}
