//! Offline subset of the `criterion` benchmarking crate (see
//! `third_party/README.md`).
//!
//! Provides the structural API the workspace benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock timer
//! instead of criterion's statistical machinery. Each benchmark runs
//! for a short, bounded window and reports the mean time per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// How input setup cost is amortized, mirroring `criterion::BatchSize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args` (no CLI options here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into() }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&id.into(), f);
        self
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the simple timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the simple timer ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Ends the group (matching the upstream API; nothing to flush).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher { total: Duration::ZERO, iters: 0 };
    f(&mut bencher);
    let per_iter =
        if bencher.iters == 0 { Duration::ZERO } else { bencher.total / bencher.iters as u32 };
    println!("bench: {id:<48} {per_iter:>12.2?}/iter ({} iters)", bencher.iters);
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, repeating until the measurement window fills.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_WINDOW {
                self.total = elapsed;
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + MEASURE_WINDOW;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
