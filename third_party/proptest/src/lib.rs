//! Offline subset of the `proptest` crate (see `third_party/README.md`).
//!
//! Implements the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro with `#![proptest_config(..)]`, `any::<T>()`,
//! integer-range strategies, `collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are sampled from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce across runs. There is **no shrinking**: a failing case is
//! reported with its exact inputs instead of a minimized one.

use rand::rngs::StdRng;
use rand::{SampleRange, SeedableRng, StandardSample};

pub mod test_runner {
    //! Mirrors `proptest::test_runner` for the names the tests import.

    /// Run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
        /// Maximum rejected samples (`prop_assume!`) tolerated per test.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// Config running `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; the case does not count.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Source of randomness handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one property test.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of values, mirroring `proptest::strategy::Strategy`
/// (sampling only — no value trees, no shrinking).
pub trait Strategy {
    type Value;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for "any value of `T`", returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Uniform strategy over all values of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: StandardSample>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

impl<T: StandardSample> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

impl<T: Copy> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange<T>,
{
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        (self.start..self.end).sample_single(rng)
    }
}

impl<T: Copy> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

/// `Just(value)` strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supported grammar (the subset this workspace uses):
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(arg in strategy, ...) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::Strategy::sample_value(&($strategy), &mut rng);)+
                    let case_desc = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let run_case = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    let outcome = run_case();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({rejected})",
                                    stringify!($name),
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed after {accepted} passing case(s)\n  inputs: {case_desc}\n  {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Mirrors `proptest::prop_assume!`: filters the current case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                concat!("assertion failed: ", stringify!($cond), ": {}"),
                format!($($fmt)+),
            )));
        }
    };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                concat!("assertion failed: ", stringify!($lhs), " == ", stringify!($rhs),
                        "\n  left: {:?}\n  right: {:?}"),
                lhs, rhs,
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                concat!("assertion failed: ", stringify!($lhs), " == ", stringify!($rhs),
                        ": {}\n  left: {:?}\n  right: {:?}"),
                format!($($fmt)+), lhs, rhs,
            )));
        }
    }};
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                concat!(
                    "assertion failed: ",
                    stringify!($lhs),
                    " != ",
                    stringify!($rhs),
                    "\n  both: {:?}"
                ),
                lhs,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in any::<u8>()) {
            prop_assert!((3..17).contains(&x));
            let _ = y;
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_len(bytes in collection::vec(any::<u8>(), 0..9)) {
            prop_assert!(bytes.len() < 9);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failure_reports_inputs() {
        proptest! {
            @run (crate::test_runner::Config::with_cases(1))
            #[allow(unreachable_code)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::RngCore;
        let mut a = crate::rng_for_test("foo");
        let mut b = crate::rng_for_test("foo");
        let mut c = crate::rng_for_test("bar");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
