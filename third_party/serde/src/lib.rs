//! Offline subset of the `serde` facade (see `third_party/README.md`).
//!
//! The workspace only *derives* `Serialize`/`Deserialize` to keep model
//! structs serialization-ready; no serializer backend is used anywhere.
//! The traits are therefore empty markers and the derives are no-ops,
//! which keeps every `#[derive(Serialize, Deserialize)]` in the tree
//! compiling without pulling in the real dependency graph.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
