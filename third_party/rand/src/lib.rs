//! Offline, API-compatible subset of the `rand` crate (0.8 series).
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, so the handful of external dependencies are vendored as
//! minimal reimplementations of exactly the API surface the IVE
//! reproduction uses (see `third_party/README.md`).
//!
//! Provided here:
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! * [`thread_rng`] / [`rngs::ThreadRng`],
//! * `gen`, `gen_range`, `gen_bool`, `fill_bytes` over the integer and
//!   float types the workspace samples.
//!
//! The streams are deterministic for a given seed but are **not** the
//! same streams as the real `rand` crate; nothing in the workspace
//! depends on the exact values, only on distributional properties.

use core::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be produced uniformly at random from an RNG, playing
/// the role of `Standard: Distribution<T>` in the real crate.
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased `[0, span)` draw by rejection sampling over a whole number
/// of spans; one `u64` word when the span allows it.
fn sample_below_u128<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    debug_assert!(span > 0);
    if span <= u128::from(u64::MAX) {
        let span = span as u64;
        let limit = u64::MAX - u64::MAX % span;
        loop {
            let x = rng.next_u64();
            if x < limit {
                return u128::from(x % span);
            }
        }
    }
    let limit = u128::MAX - u128::MAX % span;
    loop {
        let x = u128::sample(rng);
        if x < limit {
            return x % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + sample_below_u128(span, rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                // `hi - lo + 1` values; only the full-type range overflows
                // the count, so shortcut it and add 1 safely otherwise.
                let span_minus_1 = hi - lo;
                if span_minus_1 == <$t>::MAX {
                    return <$t>::sample(rng);
                }
                lo + sample_below_u128(span_minus_1 as u128 + 1, rng) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let off = (0..span).sample_single(rng);
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span_minus_1 = (hi as $u).wrapping_sub(lo as $u);
                if span_minus_1 == <$u>::MAX {
                    return <$t>::sample(rng);
                }
                let off = sample_below_u128(span_minus_1 as u128 + 1, rng);
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing RNG extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 (the
    /// same convention the real crate documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds the RNG from OS/system entropy.
    fn from_entropy() -> Self {
        Self::seed_from_u64(crate::entropy_u64())
    }
}

/// SplitMix64 — used only for seed expansion.
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        Self { state }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// 64 bits of OS entropy. Secret keys are sampled through RNGs seeded
/// here (`thread_rng`, `from_entropy`), so this must be genuinely
/// unpredictable — not time-derived.
fn entropy_u64() -> u64 {
    use std::io::Read;
    let mut buf = [0u8; 8];
    match std::fs::File::open("/dev/urandom").and_then(|mut f| f.read_exact(&mut buf)) {
        Ok(()) => u64::from_le_bytes(buf),
        Err(_) => {
            // Fallback (non-Unix): `RandomState` keys come from OS entropy
            // per process; mix two independent hashers with a counter so
            // successive calls differ.
            use std::collections::hash_map::RandomState;
            use std::hash::{BuildHasher, Hasher};
            use std::sync::atomic::{AtomicU64, Ordering};
            static CALLS: AtomicU64 = AtomicU64::new(0);
            let n = CALLS.fetch_add(1, Ordering::Relaxed);
            let mut h1 = RandomState::new().build_hasher();
            h1.write_u64(n);
            let mut h2 = RandomState::new().build_hasher();
            h2.write_u64(!n);
            h1.finish() ^ h2.finish().rotate_left(32)
        }
    }
}

pub mod rngs {
    //! Concrete RNG types, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng, SplitMix64};
    use std::cell::RefCell;

    /// xoshiro256** — a small, fast, high-quality generator. Stands in
    /// for the real crate's ChaCha12-based `StdRng`; deterministic per
    /// seed, not reproducing upstream streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // Never allow the all-zero state (fixed point of xoshiro).
            if s == [0; 4] {
                let mut sm = SplitMix64::new(0xDEAD_BEEF);
                for word in &mut s {
                    *word = sm.next_u64();
                }
            }
            Self { s }
        }
    }

    thread_local! {
        static THREAD_RNG: RefCell<StdRng> = RefCell::new(StdRng::seed_from_u64(super::entropy_u64()));
    }

    /// Handle to a lazily-initialized thread-local [`StdRng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        _private: (),
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG.with(|rng| rng.borrow_mut().step())
        }
    }

    pub(crate) fn thread_rng() -> ThreadRng {
        ThreadRng { _private: () }
    }
}

/// Returns the thread-local RNG handle, mirroring `rand::thread_rng`.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::thread_rng()
}

/// Convenience one-shot sample, mirroring `rand::random`.
pub fn random<T: StandardSample>() -> T {
    thread_rng().gen()
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{StdRng, ThreadRng};
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let s = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_infers_types() {
        let mut rng = StdRng::seed_from_u64(2);
        let _: u8 = rng.gen();
        let _: u128 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn full_range_inclusive_no_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = rng.gen_range(0u128..=u128::MAX);
    }

    #[test]
    fn inclusive_range_to_type_max() {
        // Regression: `lo..=MAX` with lo > MIN must not overflow in the
        // `hi + 1` conversion to an exclusive range.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(rng.gen_range(1u64..=u64::MAX) >= 1);
            assert!(rng.gen_range(u8::MAX..=u8::MAX) == u8::MAX);
            assert!(rng.gen_range(5i8..=i8::MAX) >= 5);
            assert!(rng.gen_range(i64::MIN..=-1) < 0);
        }
    }
}
