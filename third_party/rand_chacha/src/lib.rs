//! Offline subset of the `rand_chacha` crate: a genuine ChaCha8 block
//! generator exposing [`ChaCha8Rng`] through the vendored `rand` traits
//! (see `third_party/README.md` for why this is vendored).
//!
//! The keystream is real RFC-7539-layout ChaCha with 8 rounds, so the
//! generator's statistical quality matches upstream; `seed_from_u64`
//! seed expansion comes from the vendored `rand::SeedableRng` default
//! (SplitMix64), so exact streams are not bit-identical to upstream.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with `R` double-rounds (ChaCha8 ⇒ `R = 4`).
#[derive(Debug, Clone)]
struct ChaChaCore<const R: usize> {
    /// Key (8 words) + 64-bit block counter + 64-bit nonce.
    key: [u32; 8],
    counter: u64,
    buffer: [u64; 8],
    /// Next unread word of `buffer`; 8 means "refill".
    index: usize,
}

impl<const R: usize> ChaChaCore<R> {
    fn new(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(b);
        }
        Self { key, counter: 0, buffer: [0; 8], index: 8 }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce stays zero: one stream per seed, as rand_chacha defaults.
        let initial = state;
        for _ in 0..R {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..8 {
            let lo = state[2 * i].wrapping_add(initial[2 * i]);
            let hi = state[2 * i + 1].wrapping_add(initial[2 * i + 1]);
            self.buffer[i] = u64::from(lo) | (u64::from(hi) << 32);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_u64(&mut self) -> u64 {
        if self.index == 8 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

/// ChaCha8-based RNG, mirroring `rand_chacha::ChaCha8Rng`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    core: ChaChaCore<4>,
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self { core: ChaChaCore::new(seed) }
    }
}

/// ChaCha12-based RNG, mirroring `rand_chacha::ChaCha12Rng`.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    core: ChaChaCore<6>,
}

impl RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self { core: ChaChaCore::new(seed) }
    }
}

/// ChaCha20-based RNG, mirroring `rand_chacha::ChaCha20Rng`.
#[derive(Debug, Clone)]
pub struct ChaCha20Rng {
    core: ChaChaCore<10>,
}

impl RngCore for ChaCha20Rng {
    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }
}

impl SeedableRng for ChaCha20Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self { core: ChaChaCore::new(seed) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_distinct_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_keystream_matches_rfc7539_shape() {
        // With an all-zero seed the first block must differ from the
        // second (counter advances) and words must be well mixed.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..97);
            assert!(v < 97);
        }
    }
}
